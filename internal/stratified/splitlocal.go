package stratified

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/sampling"
)

// splitClassifier assigns every tuple of a split to its stratum in one call.
// It prefers the interval-box BatchClassifier (no closure tree per tuple) and
// keeps compiled predicates as the fallback for conditions Boxes cannot lower
// (DNF blow-up past predicate.MaxBoxes). The out slice is reused across
// splits, so steady-state classification allocates nothing.
type splitClassifier struct {
	cls   *query.BatchClassifier
	preds []predicate.Pred
	out   []int
}

func newSplitClassifier(q *query.SSD, schema *dataset.Schema) (*splitClassifier, error) {
	preds, err := q.Compile(schema)
	if err != nil {
		return nil, err
	}
	sc := &splitClassifier{preds: preds}
	if cls, err := query.NewBatchClassifier(q, schema); err == nil {
		sc.cls = cls
	}
	return sc, nil
}

// classify returns one stratum index (or -1) per tuple of the split. The
// returned slice is owned by the classifier and valid until the next call.
func (sc *splitClassifier) classify(split dataset.Split) []int {
	if sc.cls != nil {
		sc.out = sc.cls.ClassifyTuples(split, sc.out)
		return sc.out
	}
	if cap(sc.out) < len(split) {
		sc.out = make([]int, len(split))
	}
	sc.out = sc.out[:len(split)]
	for i := range split {
		sc.out[i] = query.MatchStratum(sc.preds, &split[i])
	}
	return sc.out
}

// RunSplitLocal is the Grover & Carey (ICDE 2012) style baseline the paper
// discusses in Section 2: predicate-based sampling that reads *splits* one
// at a time — assuming each split is a random sample of the whole dataset —
// and stops as soon as every stratum has enough matching tuples. It avoids
// scanning most of the data, which is its appeal.
//
// The assumption is the catch (Laptev et al., PVLDB 2012, and Section 2 of
// the paper): when data is NOT distributed randomly — the typical case where
// machines store their own region's data — the early-read splits are not
// representative and the "sample" is biased toward whatever happens to live
// in them. SplitLocalBias in the test suite quantifies this. The returned
// SplitsRead reports how much of the data the early termination saved.
func RunSplitLocal(q *query.SSD, schema *dataset.Schema, splits []dataset.Split, seed int64) (ans *query.Answer, splitsRead int, err error) {
	sc, err := newSplitClassifier(q, schema)
	if err != nil {
		return nil, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	reservoirs := make([]*sampling.Reservoir[dataset.Tuple], len(q.Strata))
	for k, s := range q.Strata {
		reservoirs[k] = sampling.NewReservoir[dataset.Tuple](s.Freq, rng)
	}
	full := func() bool {
		for k, res := range reservoirs {
			if int(res.Seen()) < q.Strata[k].Freq {
				return false
			}
		}
		return true
	}
	// Batch each split's matches per stratum so the reservoirs can consume
	// rejected runs through Algorithm L's Skip fast path instead of paying
	// one RNG draw per matching tuple.
	matched := make([][]dataset.Tuple, len(q.Strata))
	for si, split := range splits {
		for k := range matched {
			matched[k] = matched[k][:0]
		}
		for i, k := range sc.classify(split) {
			if k >= 0 {
				matched[k] = append(matched[k], split[i])
			}
		}
		for k := range matched {
			reservoirs[k].AddSlice(matched[k])
		}
		if full() {
			splitsRead = si + 1
			break
		}
		splitsRead = si + 1
	}
	ans = query.NewAnswer(len(q.Strata))
	for k, res := range reservoirs {
		ans.Strata[k] = res.TakeSample()
	}
	return ans, splitsRead, nil
}

// SplitLocalBias measures, over many runs, the worst-case deviation of any
// individual's inclusion frequency from the uniform expectation under
// RunSplitLocal, as a ratio (1 = perfectly uniform, 0 = never selected,
// 2 = selected twice as often as it should be). It is the quantitative form
// of the paper's argument against assuming randomly distributed splits.
func SplitLocalBias(q *query.SSD, schema *dataset.Schema, splits []dataset.Split, runs int) (worst float64, err error) {
	sc, err := newSplitClassifier(q, schema)
	if err != nil {
		return 0, err
	}
	counts := make(map[int64]int)
	perStratumPop := make([]int, len(q.Strata))
	for _, split := range splits {
		for _, k := range sc.classify(split) {
			if k >= 0 {
				perStratumPop[k]++
			}
		}
	}
	for run := 0; run < runs; run++ {
		ans, _, err := RunSplitLocal(q, schema, splits, int64(run))
		if err != nil {
			return 0, err
		}
		for _, stratum := range ans.Strata {
			for _, t := range stratum {
				counts[t.ID]++
			}
		}
	}
	worst = 1
	for _, split := range splits {
		for i, k := range sc.classify(split) {
			if k < 0 || perStratumPop[k] == 0 {
				continue
			}
			want := q.Strata[k].Freq
			if want > perStratumPop[k] {
				want = perStratumPop[k]
			}
			expect := float64(runs) * float64(want) / float64(perStratumPop[k])
			if expect == 0 {
				continue
			}
			ratio := float64(counts[split[i].ID]) / expect
			if d := deviation(ratio); d > deviation(worst) {
				worst = ratio
			}
		}
	}
	return worst, nil
}

func deviation(ratio float64) float64 {
	if ratio >= 1 {
		return ratio - 1
	}
	return 1 - ratio
}
