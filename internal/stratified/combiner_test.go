package stratified

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// runCombiner invokes the package's combine function directly with crafted
// weighted inputs — covering the already-subsampled merge branch the normal
// engine path never reaches (its combiner inputs are always singletons).
func runCombiner(t *testing.T, vs []WeightedTuples, freq int, seed int64) WeightedTuples {
	t.Helper()
	c := combiner(func(int) int { return freq })
	ctx := &mapreduce.TaskContext{Rand: rand.New(rand.NewSource(seed)), Phase: "combine"}
	var out []WeightedTuples
	c.Combine(ctx, 0, vs, func(w WeightedTuples) { out = append(out, w) })
	if len(out) != 1 {
		t.Fatalf("combiner emitted %d outputs, want 1", len(out))
	}
	return out[0]
}

func tuples(ids ...int64) []dataset.Tuple {
	out := make([]dataset.Tuple, len(ids))
	for i, id := range ids {
		out[i] = dataset.Tuple{ID: id, Attrs: []int64{1}}
	}
	return out
}

func TestCombinerExhaustiveBranch(t *testing.T) {
	// Singletons, as the map phase produces.
	var vs []WeightedTuples
	for id := int64(0); id < 20; id++ {
		vs = append(vs, sampling.Singleton(dataset.Tuple{ID: id, Attrs: []int64{1}}))
	}
	got := runCombiner(t, vs, 5, 1)
	if got.N != 20 {
		t.Fatalf("N = %d, want 20", got.N)
	}
	if len(got.Sample) != 5 {
		t.Fatalf("sample size %d, want 5", len(got.Sample))
	}
}

func TestCombinerMergesSubsampledParts(t *testing.T) {
	// Pre-subsampled parts (a combiner re-run): |S̄| < N.
	vs := []WeightedTuples{
		{Sample: tuples(0, 1), N: 6},
		{Sample: tuples(10, 11), N: 10},
	}
	got := runCombiner(t, vs, 2, 2)
	if got.N != 16 {
		t.Fatalf("N = %d, want 16", got.N)
	}
	if len(got.Sample) != 2 {
		t.Fatalf("sample size %d, want 2", len(got.Sample))
	}
}

// TestCombinerSubsampledUnbiased: the merge branch must weight parts by
// their source-set sizes, like the reducer's unified-sampler.
func TestCombinerSubsampledUnbiased(t *testing.T) {
	const runs = 30000
	var fromSmall int64
	for run := 0; run < runs; run++ {
		vs := []WeightedTuples{
			{Sample: tuples(0, 1), N: 4},   // 2 of 4
			{Sample: tuples(10, 11), N: 8}, // 2 of 8
		}
		got := runCombiner(t, vs, 2, int64(run))
		for _, tp := range got.Sample {
			if tp.ID < 10 {
				fromSmall++
			}
		}
	}
	// E[from block 1] per run = 2·(4/12) = 2/3.
	mean := float64(fromSmall) / runs
	if mean < 0.63 || mean > 0.71 {
		t.Fatalf("mean draws from the small block %.3f, want ≈ 2/3", mean)
	}
}

// TestCombinerExhaustiveUniform: the Algorithm R path is uniform.
func TestCombinerExhaustiveUniform(t *testing.T) {
	const runs = 15000
	counts := make([]int64, 12)
	for run := 0; run < runs; run++ {
		var vs []WeightedTuples
		for id := int64(0); id < 12; id++ {
			vs = append(vs, sampling.Singleton(dataset.Tuple{ID: id, Attrs: []int64{1}}))
		}
		got := runCombiner(t, vs, 4, int64(run)+99)
		for _, tp := range got.Sample {
			counts[tp.ID]++
		}
	}
	p, err := stats.ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("combiner reservoir biased: p = %g", p)
	}
}
