package stratified

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/stats"
)

func testSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Field{Name: "gender", Min: 0, Max: 1},
		dataset.Field{Name: "income", Min: 0, Max: 1000},
	)
}

// genderPop builds a population with `men` men then `women` women, IDs 0..n.
func genderPop(men, women int) *dataset.Relation {
	r := dataset.NewRelation(testSchema())
	id := int64(0)
	for i := 0; i < men; i++ {
		r.MustAdd(dataset.Tuple{ID: id, Attrs: []int64{1, id % 1001}})
		id++
	}
	for i := 0; i < women; i++ {
		r.MustAdd(dataset.Tuple{ID: id, Attrs: []int64{0, id % 1001}})
		id++
	}
	return r
}

func genderSSD(fMen, fWomen int) *query.SSD {
	return query.NewSSD("gender",
		query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: fMen},
		query.Stratum{Cond: predicate.MustParse("gender = 0"), Freq: fWomen},
	)
}

func zeroCluster(slaves int) *mapreduce.Cluster {
	return &mapreduce.Cluster{Slaves: slaves, SlotsPerSlave: 1, Cost: mapreduce.ZeroCostModel()}
}

// TestSQEExactCounts: the paper's Example 5 setting — 30 men and 34 women on
// two machines, select 5 men and 6 women.
func TestSQEExactCounts(t *testing.T) {
	r := genderPop(30, 34)
	splits, err := dataset.Partition(r, 2, dataset.Contiguous, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := genderSSD(5, 6)
	ans, met, err := RunSQE(zeroCluster(2), q, r.Schema(), splits, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ans.Satisfies(q, r); err != nil {
		t.Fatal(err)
	}
	if met.MapInputRecords != 64 {
		t.Fatalf("map input %d, want 64", met.MapInputRecords)
	}
	// The combiner caps each machine's shuffle contribution at f_k per
	// stratum: ≤ 2·(5+6) weighted samples.
	if met.ShuffleRecords > 4 {
		t.Fatalf("shuffle records %d; combiner should send one weighted sample per (task, stratum)", met.ShuffleRecords)
	}
}

func TestSQESmallStratumTakesAll(t *testing.T) {
	r := genderPop(3, 10)
	splits, _ := dataset.Partition(r, 4, dataset.RoundRobin, nil)
	q := genderSSD(5, 2) // only 3 men exist
	ans, _, err := RunSQE(zeroCluster(4), q, r.Schema(), splits, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Strata[0]) != 3 {
		t.Fatalf("men stratum has %d, want all 3", len(ans.Strata[0]))
	}
	if len(ans.Strata[1]) != 2 {
		t.Fatalf("women stratum has %d, want 2", len(ans.Strata[1]))
	}
}

func TestSQEEmptyStratum(t *testing.T) {
	r := genderPop(0, 10)
	splits, _ := dataset.Partition(r, 2, dataset.RoundRobin, nil)
	q := genderSSD(5, 2)
	ans, _, err := RunSQE(zeroCluster(2), q, r.Schema(), splits, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Strata[0]) != 0 {
		t.Fatalf("empty stratum returned %d tuples", len(ans.Strata[0]))
	}
}

func TestSQEExclude(t *testing.T) {
	r := genderPop(10, 10)
	splits, _ := dataset.Partition(r, 2, dataset.RoundRobin, nil)
	exclude := map[int64]struct{}{}
	for i := int64(0); i < 8; i++ { // exclude 8 of the 10 men
		exclude[i] = struct{}{}
	}
	q := genderSSD(5, 0)
	ans, _, err := RunSQE(zeroCluster(2), q, r.Schema(), splits, Options{Seed: 4, Exclude: exclude})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Strata[0]) != 2 {
		t.Fatalf("got %d men, want the 2 non-excluded", len(ans.Strata[0]))
	}
	for _, tp := range ans.Strata[0] {
		if _, banned := exclude[tp.ID]; banned {
			t.Fatalf("excluded tuple %d sampled", tp.ID)
		}
	}
}

// TestSQEUnbiasedAcrossSkewedPartitions is the paper's core correctness
// claim (Section 4.2.3): even when machines hold very different numbers of
// stratum members, every individual has equal inclusion probability. The
// naive "sample per machine then uniformly merge" scheme fails this exact
// test; MR-SQE must pass it.
func TestSQEUnbiasedAcrossSkewedPartitions(t *testing.T) {
	const runs = 4000
	r := genderPop(48, 0)
	// Highly skewed: machine 0 gets 4 men, machine 1 gets 44.
	all := r.Tuples()
	splits := []dataset.Split{
		append(dataset.Split(nil), all[:4]...),
		append(dataset.Split(nil), all[4:]...),
	}
	q := genderSSD(6, 0)
	counts := make([]int64, 48)
	for run := 0; run < runs; run++ {
		ans, _, err := RunSQE(zeroCluster(2), q, r.Schema(), splits, Options{Seed: int64(run)})
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range ans.Strata[0] {
			counts[tp.ID]++
		}
	}
	p, err := stats.ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("MR-SQE inclusion is biased across skewed machines: p = %g", p)
	}
}

// TestSQENaiveAndCombinedAgreeInDistribution: both variants must include
// each individual uniformly; compare their per-individual inclusion counts.
func TestSQENaiveAndCombinedAgreeInDistribution(t *testing.T) {
	const runs = 2500
	r := genderPop(30, 0)
	splits, _ := dataset.Partition(r, 3, dataset.Skewed, nil)
	q := genderSSD(5, 0)
	countCombined := make([]int64, 30)
	countNaive := make([]int64, 30)
	for run := 0; run < runs; run++ {
		a, _, err := RunSQE(zeroCluster(3), q, r.Schema(), splits, Options{Seed: int64(run)})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := RunSQE(zeroCluster(3), q, r.Schema(), splits, Options{Seed: int64(run), Naive: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range a.Strata[0] {
			countCombined[tp.ID]++
		}
		for _, tp := range b.Strata[0] {
			countNaive[tp.ID]++
		}
	}
	for name, counts := range map[string][]int64{"combined": countCombined, "naive": countNaive} {
		p, err := stats.ChiSquareUniformP(counts)
		if err != nil {
			t.Fatal(err)
		}
		if p < 1e-4 {
			t.Fatalf("%s variant biased: p = %g", name, p)
		}
	}
}

// TestSQEMatchesSequentialDistribution: the prefix-count distribution of the
// distributed sample matches the hypergeometric law of Remark 1, like the
// sequential oracle.
func TestSQEMatchesSequentialDistribution(t *testing.T) {
	const runs = 3000
	const nPop, fk, prefix = 24, 6, 8
	r := genderPop(nPop, 0)
	splits, _ := dataset.Partition(r, 3, dataset.Contiguous, nil)
	q := genderSSD(fk, 0)

	// Distribution of: how many sampled IDs fall among the first `prefix`
	// individuals. Expected: hypergeometric(r=24, c=6... note here the
	// "marked" set is the sample). P(y in prefix) with x=prefix drawn.
	hist := make([]int64, fk+1)
	for run := 0; run < runs; run++ {
		ans, _, err := RunSQE(zeroCluster(3), q, r.Schema(), splits, Options{Seed: int64(run) + 9000})
		if err != nil {
			t.Fatal(err)
		}
		y := 0
		for _, tp := range ans.Strata[0] {
			if tp.ID < prefix {
				y++
			}
		}
		hist[y]++
	}
	expected := make([]float64, fk+1)
	for y := 0; y <= fk; y++ {
		expected[y] = float64(runs) * stats.HypergeometricPMF(nPop, fk, prefix, int64(y))
	}
	// Merge tail cells with tiny expectation into the last usable cell to
	// keep the chi-square valid.
	obs, exp := mergeSmallCells(hist, expected, 5)
	chi2, err := stats.ChiSquareStat(obs, exp)
	if err != nil {
		t.Fatal(err)
	}
	if p := stats.ChiSquareP(chi2, len(obs)-1); p < 1e-4 {
		t.Fatalf("prefix counts not hypergeometric: p = %g (obs %v exp %v)", p, obs, exp)
	}
}

// mergeSmallCells pools adjacent cells until every expected count ≥ minExp.
func mergeSmallCells(obs []int64, exp []float64, minExp float64) ([]int64, []float64) {
	var o []int64
	var e []float64
	var accO int64
	var accE float64
	for i := range obs {
		accO += obs[i]
		accE += exp[i]
		if accE >= minExp {
			o = append(o, accO)
			e = append(e, accE)
			accO, accE = 0, 0
		}
	}
	if accE > 0 && len(e) > 0 {
		o[len(o)-1] += accO
		e[len(e)-1] += accE
	}
	return o, e
}

func TestSQEDeterministicPerSeed(t *testing.T) {
	r := genderPop(40, 40)
	splits, _ := dataset.Partition(r, 4, dataset.RoundRobin, nil)
	q := genderSSD(7, 7)
	ids := func(ans *query.Answer) []int64 {
		var out []int64
		for _, s := range ans.Strata {
			for _, tp := range s {
				out = append(out, tp.ID)
			}
		}
		return out
	}
	a, _, _ := RunSQE(zeroCluster(4), q, r.Schema(), splits, Options{Seed: 77})
	b, _, _ := RunSQE(zeroCluster(4), q, r.Schema(), splits, Options{Seed: 77})
	ia, ib := ids(a), ids(b)
	if len(ia) != len(ib) {
		t.Fatal("sizes differ across identical runs")
	}
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestSequentialOracle(t *testing.T) {
	r := genderPop(30, 34)
	q := genderSSD(5, 6)
	rng := rand.New(rand.NewSource(5))
	ans, err := Sequential(q, r, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := ans.Satisfies(q, r); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialUniform(t *testing.T) {
	const runs = 6000
	r := genderPop(20, 0)
	q := genderSSD(5, 0)
	rng := rand.New(rand.NewSource(6))
	counts := make([]int64, 20)
	for run := 0; run < runs; run++ {
		ans, err := Sequential(q, r, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range ans.Strata[0] {
			counts[tp.ID]++
		}
	}
	p, err := stats.ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("sequential sampler biased: p = %g", p)
	}
}

func TestSequentialMultiOracle(t *testing.T) {
	r := genderPop(60, 80)
	queries := []*query.SSD{genderSSD(5, 6), incomeSSD(4, 3)}
	rng := rand.New(rand.NewSource(8))
	answers, err := SequentialMulti(queries, r, rng)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		if err := answers[qi].Satisfies(q, r); err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
	}
	bad := []*query.SSD{query.NewSSD("bad", query.Stratum{Cond: predicate.MustParse("zzz = 1"), Freq: 1})}
	if _, err := SequentialMulti(bad, r, rng); err == nil {
		t.Fatal("want compile error for unknown attribute")
	}
}
