package stratified

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/stats"
)

func incomeSSD(fLow, fHigh int) *query.SSD {
	return query.NewSSD("income",
		query.Stratum{Cond: predicate.MustParse("income < 500"), Freq: fLow},
		query.Stratum{Cond: predicate.MustParse("income >= 500"), Freq: fHigh},
	)
}

func TestMQEAnswersAllQueries(t *testing.T) {
	r := genderPop(50, 50)
	splits, _ := dataset.Partition(r, 4, dataset.RoundRobin, nil)
	queries := []*query.SSD{genderSSD(5, 6), incomeSSD(4, 3)}
	answers, met, err := RunMQE(zeroCluster(4), queries, r.Schema(), splits, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("got %d answers", len(answers))
	}
	for qi, q := range queries {
		if err := answers[qi].Satisfies(q, r); err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
	}
	// One pass over the data regardless of the number of queries.
	if met.MapInputRecords != 100 {
		t.Fatalf("map input %d, want 100 (single pass)", met.MapInputRecords)
	}
}

func TestMQEEquivalentToSeparateSQEs(t *testing.T) {
	// Semantically, MR-MQE must satisfy each query exactly as MR-SQE does.
	r := genderPop(40, 60)
	splits, _ := dataset.Partition(r, 3, dataset.Contiguous, nil)
	queries := []*query.SSD{genderSSD(3, 4), incomeSSD(5, 2)}
	answers, _, err := RunMQE(zeroCluster(3), queries, r.Schema(), splits, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		single, _, err := RunSQE(zeroCluster(3), q, r.Schema(), splits, Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if answers[qi].Size() != single.Size() {
			t.Fatalf("query %d: MQE size %d vs SQE size %d", qi, answers[qi].Size(), single.Size())
		}
	}
}

func TestMQENoQueries(t *testing.T) {
	if _, _, err := RunMQE(zeroCluster(1), nil, testSchema(), nil, Options{}); err == nil {
		t.Fatal("want error for empty query set")
	}
}

// TestMQEIndependentAcrossQueries: selections for different queries are
// independent — sharing is incidental, not systematic. The average overlap
// of two full-population samples of size k from N is k²/N.
func TestMQEIndependentAcrossQueries(t *testing.T) {
	const runs = 1500
	const nPop = 40
	r := genderPop(nPop, 0)
	splits, _ := dataset.Partition(r, 2, dataset.RoundRobin, nil)
	q1 := query.NewSSD("q1", query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: 8})
	q2 := query.NewSSD("q2", query.Stratum{Cond: predicate.MustParse("income >= 0"), Freq: 8})
	var overlap int64
	for run := 0; run < runs; run++ {
		answers, _, err := RunMQE(zeroCluster(2), []*query.SSD{q1, q2}, r.Schema(), splits, Options{Seed: int64(run)})
		if err != nil {
			t.Fatal(err)
		}
		in1 := map[int64]bool{}
		for _, tp := range answers[0].Union() {
			in1[tp.ID] = true
		}
		for _, tp := range answers[1].Union() {
			if in1[tp.ID] {
				overlap++
			}
		}
	}
	mean := float64(overlap) / runs
	want := 64.0 / float64(nPop) // k²/N = 1.6
	if mean < want*0.8 || mean > want*1.2 {
		t.Fatalf("mean overlap %.3f, want ≈ %.3f (independence)", mean, want)
	}
}

// TestMQEUniformPerQuery: within one MQE run over skewed splits, each
// query's sample is still unbiased.
func TestMQEUniformPerQuery(t *testing.T) {
	const runs = 3000
	r := genderPop(36, 0)
	all := r.Tuples()
	splits := []dataset.Split{
		append(dataset.Split(nil), all[:3]...),
		append(dataset.Split(nil), all[3:]...),
	}
	queries := []*query.SSD{genderSSD(6, 0)}
	counts := make([]int64, 36)
	for run := 0; run < runs; run++ {
		answers, _, err := RunMQE(zeroCluster(2), queries, r.Schema(), splits, Options{Seed: int64(run) + 5})
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range answers[0].Strata[0] {
			counts[tp.ID]++
		}
	}
	p, err := stats.ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("MQE biased: p = %g", p)
	}
}

func TestRunKeyedBasics(t *testing.T) {
	r := genderPop(30, 30)
	splits, _ := dataset.Partition(r, 3, dataset.RoundRobin, nil)
	classify := func(tp *dataset.Tuple, emit func(string)) {
		if tp.Attrs[0] == 1 {
			emit("men")
		} else {
			emit("women")
		}
		emit("ignored-class")
	}
	freqs := map[string]int{"men": 4, "women": 7}
	out, _, err := RunKeyed(zeroCluster(3), classify, freqs, splits, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(out["men"]) != 4 || len(out["women"]) != 7 {
		t.Fatalf("sizes: men %d, women %d", len(out["men"]), len(out["women"]))
	}
	if _, present := out["ignored-class"]; present {
		t.Fatal("class without a frequency must be dropped")
	}
	for _, tp := range out["men"] {
		if tp.Attrs[0] != 1 {
			t.Fatal("misclassified tuple sampled")
		}
	}
}

func TestQSKeyString(t *testing.T) {
	k := QSKey{Query: 0, Stratum: 2}
	if k.String() != "Q1/s3" {
		t.Fatalf("String = %q", k.String())
	}
}
