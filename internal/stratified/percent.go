package stratified

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
)

// The paper's introduction defines stratified sampling as selecting "a
// predefined number (or percentage) of individuals ... from each stratum".
// Absolute frequencies are the core representation; this file provides the
// percentage form, which requires one extra counting pass to learn the
// stratum sizes before sampling.

// PercentStratum is a stratum constraint whose sample size is a percentage
// of the stratum's population instead of an absolute count.
type PercentStratum struct {
	// Cond is the stratum condition φ_k.
	Cond predicate.Expr
	// Percent is the required sampling fraction in percent, in (0, 100].
	Percent float64
}

// PercentSSD is an SSD query with percentage frequencies.
type PercentSSD struct {
	Name   string
	Strata []PercentStratum
}

// Validate checks percentages are in range and the induced SSD (with dummy
// frequencies) is valid — i.e. strata are pairwise disjoint.
func (q *PercentSSD) Validate(schema *dataset.Schema) error {
	for i, s := range q.Strata {
		if s.Percent <= 0 || s.Percent > 100 {
			return fmt.Errorf("query %s stratum %d: percentage %g outside (0, 100]", q.Name, i, s.Percent)
		}
	}
	return q.skeleton(nil).Validate(schema)
}

// skeleton builds the absolute-frequency SSD; freqs may be nil (all zero).
func (q *PercentSSD) skeleton(freqs []int) *query.SSD {
	strata := make([]query.Stratum, len(q.Strata))
	for i, s := range q.Strata {
		f := 0
		if freqs != nil {
			f = freqs[i]
		}
		strata[i] = query.Stratum{Cond: s.Cond, Freq: f}
	}
	return query.NewSSD(q.Name, strata...)
}

// stratumCountOut is one output of the stratum-size counting job.
type stratumCountOut struct {
	Stratum int
	Count   int64
}

// buildCountJob constructs the stratum-counting job for a query's
// conditions (frequencies are ignored). The coordinator and remote workers
// both build jobs through this function (workers via the "mr-stratum-count"
// maker in portable.go).
func buildCountJob(q *query.SSD, schema *dataset.Schema) (*mapreduce.Job[dataset.Tuple, int, int64, stratumCountOut], error) {
	preds, err := q.Compile(schema)
	if err != nil {
		return nil, err
	}
	return &mapreduce.Job[dataset.Tuple, int, int64, stratumCountOut]{
		Name: "mr-stratum-count",
		Mapper: mapreduce.MapperFunc[dataset.Tuple, int, int64](
			func(_ *mapreduce.TaskContext, t dataset.Tuple, emit func(int, int64)) {
				if k := query.MatchStratum(preds, &t); k >= 0 {
					emit(k, 1)
				}
			}),
		Combiner: mapreduce.CombinerFunc[int, int64](
			func(_ *mapreduce.TaskContext, _ int, vs []int64, emit func(int64)) {
				var sum int64
				for _, v := range vs {
					sum += v
				}
				emit(sum)
			}),
		Reducer: mapreduce.ReducerFunc[int, int64, stratumCountOut](
			func(_ *mapreduce.TaskContext, k int, vs []int64, emit func(stratumCountOut)) {
				var sum int64
				for _, v := range vs {
					sum += v
				}
				emit(stratumCountOut{Stratum: k, Count: sum})
			}),
		KeyString: func(k int) string { return fmt.Sprintf("s%06d", k) },
	}, nil
}

// CountStrata runs one MapReduce pass counting |σ_φk(R)| for every stratum
// of the query (its frequencies are ignored).
func CountStrata(c *mapreduce.Cluster, q *query.SSD, schema *dataset.Schema, splits []dataset.Split, seed int64) ([]int64, mapreduce.Metrics, error) {
	job, err := buildCountJob(q, schema)
	if err != nil {
		return nil, mapreduce.Metrics{}, err
	}
	job.Seed = seed
	if err := makePortable(job, "mr-stratum-count", countConfig{
		Query: q, Fields: schema.Fields(),
	}); err != nil {
		return nil, mapreduce.Metrics{}, err
	}
	res, err := mapreduce.Run(c, job, tupleSplits(splits))
	if err != nil {
		return nil, mapreduce.Metrics{}, err
	}
	counts := make([]int64, len(q.Strata))
	for _, o := range res.Output {
		counts[o.Stratum] = o.Count
	}
	return counts, res.Metrics, nil
}

// Absolutize converts the percentage query into an absolute-frequency SSD by
// counting stratum sizes with one MapReduce pass: f_k = ⌈percent·|σ_φk(R)|⌉
// (at least 1 for non-empty strata, so tiny strata are represented — the
// point of stratified sampling).
func (q *PercentSSD) Absolutize(c *mapreduce.Cluster, schema *dataset.Schema, splits []dataset.Split, seed int64) (*query.SSD, mapreduce.Metrics, error) {
	skeleton := q.skeleton(nil)
	counts, met, err := CountStrata(c, skeleton, schema, splits, seed)
	if err != nil {
		return nil, mapreduce.Metrics{}, err
	}
	freqs := make([]int, len(q.Strata))
	for k, s := range q.Strata {
		if counts[k] == 0 {
			continue
		}
		f := int(math.Ceil(s.Percent / 100 * float64(counts[k])))
		if f < 1 {
			f = 1
		}
		freqs[k] = f
	}
	return q.skeleton(freqs), met, nil
}

// RunPercentSQE answers a percentage SSD query: one counting pass to resolve
// the frequencies, then MR-SQE. Metrics accumulate both jobs.
func RunPercentSQE(c *mapreduce.Cluster, q *PercentSSD, schema *dataset.Schema, splits []dataset.Split, opts Options) (*query.Answer, *query.SSD, mapreduce.Metrics, error) {
	resolved, met, err := q.Absolutize(c, schema, splits, opts.Seed)
	if err != nil {
		return nil, nil, mapreduce.Metrics{}, err
	}
	ans, met2, err := RunSQE(c, resolved, schema, splits, opts)
	if err != nil {
		return nil, nil, mapreduce.Metrics{}, err
	}
	met.Add(met2)
	return ans, resolved, met, nil
}
