package stratified

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/query"
)

// The paper's jobs travel to worker processes as (maker, config) pairs: the
// maker name selects one of the factories registered here, and the config —
// JSON, with stratum conditions in the textual formula syntax — carries
// everything needed to rebuild the exact same job on the other side: the
// query, the schema fields, and the run options that shape map/combine
// behavior. Both the coordinator (RunSQE & co.) and the worker (via
// mapreduce.ExecuteTask) construct their jobs through the same build
// functions, so a task executes identically wherever it lands.

// sqeConfig rebuilds an MR-SQE job (maker "mr-sqe").
type sqeConfig struct {
	Query   *query.SSD      `json:"query"`
	Fields  []dataset.Field `json:"fields"`
	Naive   bool            `json:"naive,omitempty"`
	Exclude []int64         `json:"exclude,omitempty"`
}

// mqeConfig rebuilds an MR-MQE job (maker "mr-mqe").
type mqeConfig struct {
	Queries []*query.SSD    `json:"queries"`
	Fields  []dataset.Field `json:"fields"`
	Naive   bool            `json:"naive,omitempty"`
	Exclude []int64         `json:"exclude,omitempty"`
}

// countConfig rebuilds a stratum-counting job (maker "mr-stratum-count");
// the query's frequencies are ignored, only its conditions matter.
type countConfig struct {
	Query  *query.SSD      `json:"query"`
	Fields []dataset.Field `json:"fields"`
}

func init() {
	mapreduce.RegisterJobMaker("mr-sqe",
		func(config []byte) (*mapreduce.Job[dataset.Tuple, int, WeightedTuples, stratumOut], error) {
			var cfg sqeConfig
			schema, err := decodePortable(config, &cfg, func() []dataset.Field { return cfg.Fields })
			if err != nil {
				return nil, err
			}
			return buildSQEJob(cfg.Query, schema, Options{
				Naive: cfg.Naive, Exclude: excludeSet(cfg.Exclude),
			})
		})
	mapreduce.RegisterJobMaker("mr-mqe",
		func(config []byte) (*mapreduce.Job[dataset.Tuple, QSKey, WeightedTuples, qsOut], error) {
			var cfg mqeConfig
			schema, err := decodePortable(config, &cfg, func() []dataset.Field { return cfg.Fields })
			if err != nil {
				return nil, err
			}
			return buildMQEJob(cfg.Queries, schema, Options{
				Naive: cfg.Naive, Exclude: excludeSet(cfg.Exclude),
			})
		})
	mapreduce.RegisterJobMaker("mr-stratum-count",
		func(config []byte) (*mapreduce.Job[dataset.Tuple, int, int64, stratumCountOut], error) {
			var cfg countConfig
			schema, err := decodePortable(config, &cfg, func() []dataset.Field { return cfg.Fields })
			if err != nil {
				return nil, err
			}
			return buildCountJob(cfg.Query, schema)
		})
}

// decodePortable unmarshals a job config and rebuilds its schema.
func decodePortable(config []byte, cfg any, fields func() []dataset.Field) (*dataset.Schema, error) {
	if err := json.Unmarshal(config, cfg); err != nil {
		return nil, fmt.Errorf("stratified: decoding job config: %w", err)
	}
	schema, err := dataset.NewSchema(fields()...)
	if err != nil {
		return nil, fmt.Errorf("stratified: rebuilding schema: %w", err)
	}
	return schema, nil
}

// makePortable attaches the (maker, config) pair that lets remote workers
// rebuild the job.
func makePortable[I any, K comparable, V any, O any](job *mapreduce.Job[I, K, V, O], maker string, cfg any) error {
	payload, err := json.Marshal(cfg)
	if err != nil {
		return fmt.Errorf("stratified: encoding %s job config: %w", maker, err)
	}
	job.Maker, job.Config = maker, payload
	return nil
}

// sortedExclude renders an exclusion set in deterministic (sorted) order, so
// a job's config bytes — and with them worker-side job caching — don't
// depend on map iteration order.
func sortedExclude(exclude map[int64]struct{}) []int64 {
	if len(exclude) == 0 {
		return nil
	}
	ids := make([]int64, 0, len(exclude))
	for id := range exclude {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func excludeSet(ids []int64) map[int64]struct{} {
	if len(ids) == 0 {
		return nil
	}
	set := make(map[int64]struct{}, len(ids))
	for _, id := range ids {
		set[id] = struct{}{}
	}
	return set
}
