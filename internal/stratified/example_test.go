package stratified_test

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/stratified"
)

// Answer a stratified-sampling query over a population distributed on two
// machines with MR-SQE.
func ExampleRunSQE() {
	schema := dataset.MustSchema(dataset.Field{Name: "gender", Min: 0, Max: 1})
	r := dataset.NewRelation(schema)
	for i := int64(0); i < 64; i++ {
		gender := int64(0)
		if i < 30 {
			gender = 1
		}
		r.MustAdd(dataset.Tuple{ID: i, Attrs: []int64{gender}})
	}
	splits, _ := dataset.Partition(r, 2, dataset.Contiguous, nil)

	q := query.NewSSD("example5",
		query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: 5},
		query.Stratum{Cond: predicate.MustParse("gender = 0"), Freq: 6},
	)
	cluster := &mapreduce.Cluster{Slaves: 2, SlotsPerSlave: 1, Cost: mapreduce.ZeroCostModel()}
	ans, _, _ := stratified.RunSQE(cluster, q, schema, splits, stratified.Options{Seed: 1})
	fmt.Printf("men sampled: %d, women sampled: %d\n", len(ans.Strata[0]), len(ans.Strata[1]))
	// Output:
	// men sampled: 5, women sampled: 6
}
