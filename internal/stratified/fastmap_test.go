package stratified

import (
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/query"
)

// The batch mappers promise the exact emission stream of the per-record
// mappers (fastmap.go). These tests pin that contract end to end: run the
// same job with and without the BatchMapper and require byte-identical
// output and identical counters, across naive/combined and exclude
// variants.

func fastmapQueries() []*query.SSD {
	return []*query.SSD{genderSSD(7, 5), incomeSSD(6, 9)}
}

func counterTuple(m mapreduce.Metrics) [6]int64 {
	return [6]int64{
		m.MapInputRecords, m.MapOutputRecords,
		m.CombineInputRecs, m.CombineOutputRecs,
		m.ReduceInputGroups, m.ReduceInputRecs,
	}
}

func TestBatchMapperByteIdenticalSQE(t *testing.T) {
	r := genderPop(400, 350)
	splits, _ := dataset.Partition(r, 4, dataset.Contiguous, nil)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"combined", Options{Seed: 3}},
		{"naive", Options{Seed: 3, Naive: true}},
		{"exclude", Options{Seed: 3, Exclude: map[int64]struct{}{5: {}, 17: {}, 300: {}}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			q := genderSSD(8, 6)
			fast, err := buildSQEJob(q, r.Schema(), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := buildSQEJob(q, r.Schema(), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			slow.BatchMapper = nil // reference: the per-record path
			fast.Seed, slow.Seed = tc.opts.Seed, tc.opts.Seed
			resFast, err := mapreduce.Run(zeroCluster(4), fast, tupleSplits(splits))
			if err != nil {
				t.Fatal(err)
			}
			resSlow, err := mapreduce.Run(zeroCluster(4), slow, tupleSplits(splits))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(resFast.Output, resSlow.Output) {
				t.Fatalf("batch mapper output differs from per-record mapper")
			}
			if counterTuple(resFast.Metrics) != counterTuple(resSlow.Metrics) {
				t.Fatalf("counters differ: fast %v slow %v",
					counterTuple(resFast.Metrics), counterTuple(resSlow.Metrics))
			}
		})
	}
}

func TestBatchMapperByteIdenticalMQE(t *testing.T) {
	r := genderPop(500, 450)
	splits, _ := dataset.Partition(r, 5, dataset.RoundRobin, nil)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"combined", Options{Seed: 11}},
		{"naive", Options{Seed: 11, Naive: true}},
		{"exclude", Options{Seed: 11, Exclude: map[int64]struct{}{2: {}, 900: {}}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fast, err := buildMQEJob(fastmapQueries(), r.Schema(), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := buildMQEJob(fastmapQueries(), r.Schema(), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			slow.BatchMapper = nil
			fast.Seed, slow.Seed = tc.opts.Seed, tc.opts.Seed
			resFast, err := mapreduce.Run(zeroCluster(3), fast, tupleSplits(splits))
			if err != nil {
				t.Fatal(err)
			}
			resSlow, err := mapreduce.Run(zeroCluster(3), slow, tupleSplits(splits))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(resFast.Output, resSlow.Output) {
				t.Fatalf("batch mapper output differs from per-record mapper")
			}
			if counterTuple(resFast.Metrics) != counterTuple(resSlow.Metrics) {
				t.Fatalf("counters differ: fast %v slow %v",
					counterTuple(resFast.Metrics), counterTuple(resSlow.Metrics))
			}
		})
	}
}
