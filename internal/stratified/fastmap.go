package stratified

import (
	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
)

// The whole-split map fast path. Profiling an 8-query MR-MQE pass over 10⁵
// tuples put ~84% of the wall time in the map emit path: one Singleton
// allocation per matching (query, tuple) pair, one group-map probe per
// emission, GC scanning the resulting sea of one-element slices, and the
// doubling growth of the per-key value lists. The batch mappers below
// produce the exact same emission stream — same values, same first-seen key
// order, same counters, pinned by TestBatchMapperByteIdentical — in two
// phases:
//
//  1. classify: evaluate predicates once per tuple, recording each match in
//     a pointer-free marks array and counting matches per (query, stratum);
//  2. fill: intern the keys in first-seen order with exact-capacity value
//     lists (no doubling churn), then replay the marks in tuple order,
//     appending each singleton without re-evaluating a predicate.
//
// Singletons are zero-copy subslices of the split: a Singleton's tuple copy
// shares the Name/Attrs backing with the original anyway, so the value is
// identical, and the full-capacity slice (ti:ti+1:ti+1) makes an append
// reallocate instead of overwriting the neighboring resident tuple.
// Downstream stages only read the sample or copy tuples out of it
// (reservoir Add, unified sampling), never retain it past the pass, so
// aliasing the resident split is safe — including in live mode, where the
// pass holds the population read lock until its answers are demuxed.

// singleton returns the length-1 sample slice for split[ti], value-identical
// to sampling.Singleton(split[ti]).Sample without the allocation.
func singleton(split []dataset.Tuple, ti int) []dataset.Tuple {
	return split[ti : ti+1 : ti+1]
}

// sqeBatchMapper is the whole-split equivalent of the MR-SQE mapper.
type sqeBatchMapper struct {
	preds   []predicate.Pred
	exclude map[int64]struct{}
}

func (m *sqeBatchMapper) MapSplit(_ *mapreduce.TaskContext, split []dataset.Tuple, out *mapreduce.Grouper[int, WeightedTuples]) {
	// Classify: marks[ti] holds 1+stratum of split[ti], 0 for no match.
	marks := make([]int32, len(split))
	counts := make([]int32, len(m.preds))
	var firstSeen []int32
	checkExclude := len(m.exclude) > 0
	for ti := range split {
		t := &split[ti]
		if checkExclude {
			if _, skip := m.exclude[t.ID]; skip {
				continue
			}
		}
		if k := query.MatchStratum(m.preds, t); k >= 0 {
			marks[ti] = int32(k + 1)
			if counts[k] == 0 {
				firstSeen = append(firstSeen, int32(k))
			}
			counts[k]++
		}
	}
	// Fill: exact-capacity lists in first-seen key order, values in tuple
	// order — the same emission stream the per-record mapper produces.
	gidx := make([]int, len(m.preds))
	for _, k := range firstSeen {
		gidx[k] = out.InternSized(int(k), int(counts[k]))
	}
	for ti, mk := range marks {
		if mk != 0 {
			out.Append(gidx[mk-1], WeightedTuples{Sample: singleton(split, ti), N: 1})
		}
	}
}

// mqeBatchMapper is the whole-split equivalent of the MR-MQE mapper: the
// tuple-outer, query-inner loop order and the break after a query's first
// matching stratum (strata of one query are disjoint) mirror the per-record
// mapper exactly, so the (Q_i, s_k) first-seen order is preserved.
type mqeBatchMapper struct {
	compiled [][]predicate.Pred
	exclude  map[int64]struct{}
}

func (m *mqeBatchMapper) MapSplit(_ *mapreduce.TaskContext, split []dataset.Tuple, out *mapreduce.Grouper[QSKey, WeightedTuples]) {
	nq := len(m.compiled)
	// Classify: row ti*nq..ti*nq+nq holds, per query, 1+stratum of the
	// query's matching stratum for split[ti] (0 = no match).
	marks := make([]int32, nq*len(split))
	counts := make([][]int32, nq)
	for qi := range m.compiled {
		counts[qi] = make([]int32, len(m.compiled[qi]))
	}
	type qs struct{ qi, k int32 }
	var firstSeen []qs
	checkExclude := len(m.exclude) > 0
	for ti := range split {
		t := &split[ti]
		if checkExclude {
			if _, skip := m.exclude[t.ID]; skip {
				continue
			}
		}
		row := marks[ti*nq : (ti+1)*nq]
		for qi := range m.compiled {
			preds := m.compiled[qi]
			for k := range preds {
				if preds[k](t) {
					row[qi] = int32(k + 1)
					if counts[qi][k] == 0 {
						firstSeen = append(firstSeen, qs{int32(qi), int32(k)})
					}
					counts[qi][k]++
					break // strata of one query are disjoint
				}
			}
		}
	}
	// Fill: exact-capacity lists in first-seen key order, values in
	// tuple-outer query-inner order — the per-record emission stream.
	gidx := make([][]int, nq)
	for qi := range gidx {
		gidx[qi] = make([]int, len(m.compiled[qi]))
	}
	for _, fs := range firstSeen {
		gidx[fs.qi][fs.k] = out.InternSized(QSKey{Query: int(fs.qi), Stratum: int(fs.k)}, int(counts[fs.qi][fs.k]))
	}
	for ti := 0; ti < len(split); ti++ {
		row := marks[ti*nq : (ti+1)*nq]
		var s []dataset.Tuple
		for qi, mk := range row {
			if mk == 0 {
				continue
			}
			if s == nil {
				s = singleton(split, ti)
			}
			out.Append(gidx[qi][mk-1], WeightedTuples{Sample: s, N: 1})
		}
	}
}
