package stratified

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/sampling"
)

// QSKey identifies a stratum across the query set: the (Q_i, s_k) mapping key
// of MR-MQE. Both indexes are 0-based.
type QSKey struct {
	Query   int
	Stratum int
}

// String renders the key as "Q1/s2" (1-based, like the paper's notation).
func (k QSKey) String() string { return fmt.Sprintf("Q%d/s%d", k.Query+1, k.Stratum+1) }

// qsOut is one reducer output of MR-MQE: the final sample of one stratum of
// one query.
type qsOut struct {
	Key    QSKey
	Sample []dataset.Tuple
}

// buildMQEJob constructs the MR-MQE job for a query set. The coordinator
// and remote workers both build jobs through this function (workers via the
// "mr-mqe" maker in portable.go).
func buildMQEJob(queries []*query.SSD, schema *dataset.Schema, opts Options) (*mapreduce.Job[dataset.Tuple, QSKey, WeightedTuples, qsOut], error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("stratified: no queries")
	}
	compiled := make([][]predicate.Pred, len(queries))
	freqs := make(map[QSKey]int)
	for qi, q := range queries {
		ps, err := q.Compile(schema)
		if err != nil {
			return nil, err
		}
		compiled[qi] = ps
		for k, s := range q.Strata {
			freqs[QSKey{qi, k}] = s.Freq
		}
	}

	job := &mapreduce.Job[dataset.Tuple, QSKey, WeightedTuples, qsOut]{
		Name: "mr-mqe",
		Mapper: mapreduce.MapperFunc[dataset.Tuple, QSKey, WeightedTuples](
			func(_ *mapreduce.TaskContext, t dataset.Tuple, emit func(QSKey, WeightedTuples)) {
				if _, skip := opts.Exclude[t.ID]; skip {
					return
				}
				for qi := range compiled {
					for k, pred := range compiled[qi] {
						if pred(&t) {
							emit(QSKey{qi, k}, sampling.Singleton(t))
							break // strata of one query are disjoint
						}
					}
				}
			}),
		Reducer: mapreduce.ReducerFunc[QSKey, WeightedTuples, qsOut](
			func(ctx *mapreduce.TaskContext, k QSKey, vs []WeightedTuples, emit func(qsOut)) {
				emit(qsOut{Key: k, Sample: sampling.UnifiedSample(vs, freqs[k], ctx.Rand)})
			}),
		KeyString: func(k QSKey) string { return fmt.Sprintf("q%04d/s%06d", k.Query, k.Stratum) },
	}
	// Whole-split fast path (fastmap.go): same emission stream, amortized
	// allocations. Present on every backend because workers rebuild the job
	// through this same function.
	job.BatchMapper = &mqeBatchMapper{compiled: compiled, exclude: opts.Exclude}
	if !opts.Naive {
		job.Combiner = combiner(func(k QSKey) int { return freqs[k] })
	}
	return job, nil
}

// RunMQE answers a set of SSD queries in a single MapReduce pass (Algorithm
// MR-MQE): the mapper emits a ((Q_i, s_k), ({t}, 1)) pair for every query
// whose stratum the tuple satisfies; combine and reduce are as in MR-SQE.
// It returns one answer per query, aligned with the queries slice.
func RunMQE(c *mapreduce.Cluster, queries []*query.SSD, schema *dataset.Schema, splits []dataset.Split, opts Options) (query.MultiAnswer, mapreduce.Metrics, error) {
	job, err := buildMQEJob(queries, schema, opts)
	if err != nil {
		return nil, mapreduce.Metrics{}, err
	}
	job.Seed = opts.Seed
	if err := makePortable(job, "mr-mqe", mqeConfig{
		Queries: queries, Fields: schema.Fields(),
		Naive: opts.Naive, Exclude: sortedExclude(opts.Exclude),
	}); err != nil {
		return nil, mapreduce.Metrics{}, err
	}

	res, err := mapreduce.Run(c, job, tupleSplits(splits))
	if err != nil {
		return nil, mapreduce.Metrics{}, err
	}
	answers := make(query.MultiAnswer, len(queries))
	for qi, q := range queries {
		answers[qi] = query.NewAnswer(len(q.Strata))
	}
	for _, out := range res.Output {
		answers[out.Key.Query].Strata[out.Key.Stratum] = out.Sample
	}
	return answers, res.Metrics, nil
}
