package stratified

import (
	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/sampling"
	"repro/internal/wire"
)

// Binary wire codecs for the hot payload types of the portable jobs
// registered in portable.go: tuple splits ship columnar (TupleBatch), and
// the three shuffle pair shapes — (stratum, weighted tuples) for MR-SQE,
// (query/stratum, weighted tuples) for MR-MQE, (stratum, count) for
// mr-stratum-count — get tight hand-rolled pair codecs. Registration lives
// in init alongside the job makers so every binary that can run the jobs
// also speaks their payload format.

func init() {
	mapreduce.RegisterSliceCodec(mapreduce.SliceCodec[dataset.Tuple]{
		Append: appendTupleSlice,
		Read:   readTupleSlice,
	})
	mapreduce.RegisterBucketCodec(mapreduce.BucketCodec[int, WeightedTuples]{
		AppendPair: func(buf []byte, p mapreduce.Pair[int, WeightedTuples]) []byte {
			buf = wire.AppendVarint(buf, int64(p.Key))
			return appendWeightedTuples(buf, p.Value)
		},
		ReadPair: func(r *wire.Reader) (mapreduce.Pair[int, WeightedTuples], error) {
			var p mapreduce.Pair[int, WeightedTuples]
			p.Key = int(r.Varint())
			var err error
			p.Value, err = readWeightedTuples(r)
			return p, err
		},
	})
	mapreduce.RegisterBucketCodec(mapreduce.BucketCodec[QSKey, WeightedTuples]{
		AppendPair: func(buf []byte, p mapreduce.Pair[QSKey, WeightedTuples]) []byte {
			buf = wire.AppendVarint(buf, int64(p.Key.Query))
			buf = wire.AppendVarint(buf, int64(p.Key.Stratum))
			return appendWeightedTuples(buf, p.Value)
		},
		ReadPair: func(r *wire.Reader) (mapreduce.Pair[QSKey, WeightedTuples], error) {
			var p mapreduce.Pair[QSKey, WeightedTuples]
			p.Key.Query = int(r.Varint())
			p.Key.Stratum = int(r.Varint())
			var err error
			p.Value, err = readWeightedTuples(r)
			return p, err
		},
	})
	mapreduce.RegisterBucketCodec(mapreduce.BucketCodec[int, int64]{
		AppendPair: func(buf []byte, p mapreduce.Pair[int, int64]) []byte {
			buf = wire.AppendVarint(buf, int64(p.Key))
			return wire.AppendVarint(buf, p.Value)
		},
		ReadPair: func(r *wire.Reader) (mapreduce.Pair[int, int64], error) {
			var p mapreduce.Pair[int, int64]
			p.Key = int(r.Varint())
			p.Value = r.Varint()
			return p, r.Err()
		},
	})
}

// appendTupleSlice ships a []Tuple split columnar when the tuples have
// uniform arity (one leading 1 byte), falling back to per-tuple encoding
// for ragged slices (leading 0 byte).
func appendTupleSlice(buf []byte, ts []dataset.Tuple) []byte {
	if b, ok := dataset.BatchOfTuples(ts); ok {
		buf = append(buf, 1)
		return b.AppendWire(buf)
	}
	buf = append(buf, 0)
	buf = wire.AppendUvarint(buf, uint64(len(ts)))
	for i := range ts {
		buf = ts[i].AppendWire(buf)
	}
	return buf
}

func readTupleSlice(r *wire.Reader) ([]dataset.Tuple, error) {
	if r.Bool() {
		b, err := dataset.ReadTupleBatchWire(r)
		if err != nil {
			return nil, err
		}
		if b.Len() == 0 {
			return nil, r.Err()
		}
		return b.Tuples(), r.Err()
	}
	n := r.Count(1)
	var ts []dataset.Tuple
	if n > 0 {
		ts = make([]dataset.Tuple, 0, n)
	}
	for i := 0; i < n; i++ {
		t, err := dataset.ReadTupleWire(r)
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
	return ts, r.Err()
}

// appendWeightedTuples encodes a sampling.Weighted[dataset.Tuple]: the
// population weight, then the sample as a columnar batch (same fallback
// scheme as appendTupleSlice).
func appendWeightedTuples(buf []byte, w WeightedTuples) []byte {
	buf = wire.AppendVarint(buf, w.N)
	return appendTupleSlice(buf, w.Sample)
}

func readWeightedTuples(r *wire.Reader) (WeightedTuples, error) {
	var w sampling.Weighted[dataset.Tuple]
	w.N = r.Varint()
	var err error
	w.Sample, err = readTupleSlice(r)
	return w, err
}
