package stratified

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/query"
)

// TestSQEOverTCPShuffle runs the whole MR-SQE pipeline with its shuffle
// travelling gob-encoded over loopback TCP — the closest this repo gets to
// the paper's real cluster — and checks the answer is still exact and the
// byte counts are real.
func TestSQEOverTCPShuffle(t *testing.T) {
	r := genderPop(200, 150)
	splits, err := dataset.Partition(r, 6, dataset.Contiguous, nil)
	if err != nil {
		t.Fatal(err)
	}
	cluster := mapreduce.NewCluster(3)
	cluster.NewTransport = func() (mapreduce.Transport, error) { return mapreduce.NewTCPTransport() }
	q := genderSSD(7, 9)
	ans, met, err := RunSQE(cluster, q, r.Schema(), splits, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := ans.Satisfies(q, r); err != nil {
		t.Fatal(err)
	}
	if met.ShuffleBytes == 0 {
		t.Fatal("no wire bytes recorded")
	}

	// Same seed without the transport must select the same individuals:
	// serialization must not perturb determinism.
	plain, _, err := RunSQE(mapreduce.NewCluster(3), q, r.Schema(), splits, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for k := range q.Strata {
		if len(ans.Strata[k]) != len(plain.Strata[k]) {
			t.Fatalf("stratum %d sizes differ", k)
		}
		for i := range ans.Strata[k] {
			if ans.Strata[k][i].ID != plain.Strata[k][i].ID {
				t.Fatalf("stratum %d tuple %d differs across transports", k, i)
			}
		}
	}
}

// TestMQEOverTCPShuffle: the multi-query pipeline with struct keys also
// survives the serialized shuffle.
func TestMQEOverTCPShuffle(t *testing.T) {
	r := genderPop(120, 130)
	splits, _ := dataset.Partition(r, 4, dataset.RoundRobin, nil)
	cluster := mapreduce.NewCluster(2)
	cluster.NewTransport = func() (mapreduce.Transport, error) { return mapreduce.NewTCPTransport() }
	queries := []*query.SSD{genderSSD(4, 5), incomeSSD(3, 6)}
	answers, met, err := RunMQE(cluster, queries, r.Schema(), splits, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		if err := answers[qi].Satisfies(q, r); err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
	}
	if met.ShuffleBytes == 0 {
		t.Fatal("no wire bytes recorded")
	}
}
