package stratified

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/sampling"
)

// Sequential answers an SSD query with a single sequential pass over the
// population, keeping one Algorithm R reservoir per stratum (Section 4.1 of
// the paper). It is the non-distributed reference implementation the
// distributed algorithms must be statistically equivalent to, and the test
// oracle for MR-SQE.
func Sequential(q *query.SSD, r *dataset.Relation, rng *rand.Rand) (*query.Answer, error) {
	preds, err := q.Compile(r.Schema())
	if err != nil {
		return nil, err
	}
	reservoirs := make([]*sampling.Reservoir[dataset.Tuple], len(q.Strata))
	for k, s := range q.Strata {
		reservoirs[k] = sampling.NewReservoir[dataset.Tuple](s.Freq, rng)
	}
	tuples := r.Tuples()
	for i := range tuples {
		if k := query.MatchStratum(preds, &tuples[i]); k >= 0 {
			reservoirs[k].Add(tuples[i])
		}
	}
	ans := query.NewAnswer(len(q.Strata))
	for k, res := range reservoirs {
		ans.Strata[k] = res.TakeSample()
	}
	return ans, nil
}

// SequentialMulti answers several SSD queries in one sequential pass,
// mirroring MR-MQE; it is the oracle for the multi-query case.
func SequentialMulti(queries []*query.SSD, r *dataset.Relation, rng *rand.Rand) (query.MultiAnswer, error) {
	compiled := make([][]func(*dataset.Tuple) bool, len(queries))
	reservoirs := make([][]*sampling.Reservoir[dataset.Tuple], len(queries))
	for qi, q := range queries {
		preds, err := q.Compile(r.Schema())
		if err != nil {
			return nil, err
		}
		fs := make([]func(*dataset.Tuple) bool, len(preds))
		for i, p := range preds {
			fs[i] = p
		}
		compiled[qi] = fs
		reservoirs[qi] = make([]*sampling.Reservoir[dataset.Tuple], len(q.Strata))
		for k, s := range q.Strata {
			reservoirs[qi][k] = sampling.NewReservoir[dataset.Tuple](s.Freq, rng)
		}
	}
	tuples := r.Tuples()
	for i := range tuples {
		for qi := range compiled {
			for k, pred := range compiled[qi] {
				if pred(&tuples[i]) {
					reservoirs[qi][k].Add(tuples[i])
					break
				}
			}
		}
	}
	answers := make(query.MultiAnswer, len(queries))
	for qi, q := range queries {
		answers[qi] = query.NewAnswer(len(q.Strata))
		for k := range q.Strata {
			answers[qi].Strata[k] = reservoirs[qi][k].TakeSample()
		}
	}
	return answers, nil
}
