package stratified

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestSplitLocalStopsEarly(t *testing.T) {
	r := genderPop(500, 500)
	splits, _ := dataset.Partition(r, 10, dataset.RoundRobin, nil)
	q := genderSSD(5, 5)
	ans, splitsRead, err := RunSplitLocal(q, r.Schema(), splits, 1)
	if err != nil {
		t.Fatal(err)
	}
	if splitsRead >= 10 {
		t.Fatalf("read all %d splits; early termination failed", splitsRead)
	}
	if len(ans.Strata[0]) != 5 || len(ans.Strata[1]) != 5 {
		t.Fatalf("sample sizes %d/%d", len(ans.Strata[0]), len(ans.Strata[1]))
	}
}

func TestSplitLocalReadsEverythingWhenScarce(t *testing.T) {
	r := genderPop(3, 100) // 3 men, freq wants 5
	splits, _ := dataset.Partition(r, 5, dataset.RoundRobin, nil)
	q := genderSSD(5, 2)
	ans, splitsRead, err := RunSplitLocal(q, r.Schema(), splits, 1)
	if err != nil {
		t.Fatal(err)
	}
	if splitsRead != 5 {
		t.Fatalf("read %d splits; scarcity forces a full scan", splitsRead)
	}
	if len(ans.Strata[0]) != 3 {
		t.Fatalf("men stratum has %d, want all 3", len(ans.Strata[0]))
	}
}

// TestSplitLocalBiasedOnContiguousLayout quantifies the Section 2 critique:
// on locality-correlated (contiguous) splits, split-local sampling is badly
// biased; on randomly shuffled splits — the Grover & Carey assumption — the
// same algorithm is fine.
func TestSplitLocalBiasedOnContiguousLayout(t *testing.T) {
	const runs = 400
	r := genderPop(400, 0)
	q := genderSSD(8, 0)

	contiguous, err := dataset.Partition(r, 8, dataset.Contiguous, nil)
	if err != nil {
		t.Fatal(err)
	}
	worstContig, err := SplitLocalBias(q, r.Schema(), contiguous, runs)
	if err != nil {
		t.Fatal(err)
	}
	// With 8 equal splits and early termination after the first, late
	// splits should essentially never be sampled: worst ratio ≈ 0.
	if dev := deviation(worstContig); dev < 0.8 {
		t.Fatalf("contiguous layout bias only %.2f; expected near-total exclusion of late splits", dev)
	}

	// Under the Grover & Carey assumption the *layout itself* is random:
	// re-shuffle the data across splits before every run. Then inclusion
	// is uniform over individuals even with early termination.
	rng := rand.New(rand.NewSource(5))
	counts := make([]int64, 400)
	for run := 0; run < 2000; run++ {
		shuffled, err := dataset.Partition(r, 8, dataset.ShuffledContiguous, rng)
		if err != nil {
			t.Fatal(err)
		}
		ans, _, err := RunSplitLocal(q, r.Schema(), shuffled, int64(run))
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range ans.Strata[0] {
			counts[tp.ID]++
		}
	}
	p, err := stats.ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("split-local biased even on per-run random layouts: p = %g", p)
	}
}

// TestMRSQEUnbiasedWhereSplitLocalFails closes the loop: on the exact layout
// that breaks split-local sampling, MR-SQE stays uniform (already verified
// statistically elsewhere; here we only check it samples across all splits).
func TestMRSQEUnbiasedWhereSplitLocalFails(t *testing.T) {
	r := genderPop(400, 0)
	splits, _ := dataset.Partition(r, 8, dataset.Contiguous, nil)
	q := genderSSD(8, 0)
	seenLate := false
	for run := 0; run < 50 && !seenLate; run++ {
		ans, _, err := RunSQE(zeroCluster(8), q, r.Schema(), splits, Options{Seed: int64(run)})
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range ans.Strata[0] {
			if tp.ID >= 350 { // last split
				seenLate = true
			}
		}
	}
	if !seenLate {
		t.Fatal("MR-SQE never sampled the last split in 50 runs")
	}
}
