package stratified

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/predicate"
)

func percentQuery(pMen, pWomen float64) *PercentSSD {
	return &PercentSSD{
		Name: "pct",
		Strata: []PercentStratum{
			{Cond: predicate.MustParse("gender = 1"), Percent: pMen},
			{Cond: predicate.MustParse("gender = 0"), Percent: pWomen},
		},
	}
}

func TestPercentValidate(t *testing.T) {
	if err := percentQuery(10, 5).Validate(testSchema()); err != nil {
		t.Fatal(err)
	}
	if err := percentQuery(0, 5).Validate(testSchema()); err == nil {
		t.Fatal("want error for 0%")
	}
	if err := percentQuery(101, 5).Validate(testSchema()); err == nil {
		t.Fatal("want error for >100%")
	}
	overlap := &PercentSSD{
		Name: "bad",
		Strata: []PercentStratum{
			{Cond: predicate.MustParse("income < 100"), Percent: 5},
			{Cond: predicate.MustParse("income < 200"), Percent: 5},
		},
	}
	if err := overlap.Validate(testSchema()); err == nil {
		t.Fatal("want error for overlapping strata")
	}
}

func TestAbsolutize(t *testing.T) {
	r := genderPop(200, 50)
	splits, _ := dataset.Partition(r, 4, dataset.RoundRobin, nil)
	q := percentQuery(10, 4)
	resolved, met, err := q.Absolutize(zeroCluster(4), r.Schema(), splits, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := resolved.Strata[0].Freq; got != 20 { // 10% of 200 men
		t.Fatalf("men freq %d, want 20", got)
	}
	if got := resolved.Strata[1].Freq; got != 2 { // 4% of 50 women
		t.Fatalf("women freq %d, want 2", got)
	}
	if met.MapInputRecords != 250 {
		t.Fatalf("counting pass read %d records", met.MapInputRecords)
	}
}

func TestAbsolutizeRoundsUpAndKeepsTinyStrata(t *testing.T) {
	r := genderPop(3, 1000) // 3 men only
	splits, _ := dataset.Partition(r, 2, dataset.RoundRobin, nil)
	q := percentQuery(1, 1) // 1% of 3 men = 0.03 → at least 1
	resolved, _, err := q.Absolutize(zeroCluster(2), r.Schema(), splits, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Strata[0].Freq != 1 {
		t.Fatalf("tiny stratum freq %d, want 1 (must stay represented)", resolved.Strata[0].Freq)
	}
	if resolved.Strata[1].Freq != 10 {
		t.Fatalf("women freq %d, want 10", resolved.Strata[1].Freq)
	}
}

func TestAbsolutizeEmptyStratum(t *testing.T) {
	r := genderPop(0, 100)
	splits, _ := dataset.Partition(r, 2, dataset.RoundRobin, nil)
	resolved, _, err := percentQuery(50, 10).Absolutize(zeroCluster(2), r.Schema(), splits, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Strata[0].Freq != 0 {
		t.Fatalf("empty stratum freq %d, want 0", resolved.Strata[0].Freq)
	}
}

func TestRunPercentSQEEndToEnd(t *testing.T) {
	r := genderPop(300, 100)
	splits, _ := dataset.Partition(r, 5, dataset.Contiguous, nil)
	q := percentQuery(5, 10)
	ans, resolved, met, err := RunPercentSQE(zeroCluster(5), q, r.Schema(), splits, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := ans.Satisfies(resolved, r); err != nil {
		t.Fatal(err)
	}
	if len(ans.Strata[0]) != 15 || len(ans.Strata[1]) != 10 {
		t.Fatalf("sample sizes %d/%d, want 15/10", len(ans.Strata[0]), len(ans.Strata[1]))
	}
	// Two passes over the data: counting + sampling.
	if met.MapInputRecords != 800 {
		t.Fatalf("map input %d, want 800 (two passes of 400)", met.MapInputRecords)
	}
}

func TestCountStrataMatchesRelationCount(t *testing.T) {
	r := genderPop(123, 77)
	splits, _ := dataset.Partition(r, 3, dataset.Skewed, nil)
	q := genderSSD(1, 1)
	counts, _, err := CountStrata(zeroCluster(3), q, r.Schema(), splits, 1)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 123 || counts[1] != 77 {
		t.Fatalf("counts = %v", counts)
	}
}
