// Package stratified implements the paper's distributed stratified-sampling
// algorithms on top of the MapReduce engine:
//
//   - MR-SQE (Section 4.2.2, Figure 2): map partitions tuples by stratum
//     constraint, a combiner draws per-map-task reservoir samples tagged with
//     the size of the set they were drawn from, and the reducer applies the
//     unified-sampler (Algorithm 1) to produce an unbiased final sample.
//   - the naive variant (Section 4.2.1, Figure 1), which shuffles every
//     matching tuple — used as a baseline to show what the combiner saves.
//   - MR-MQE (Section 5.1): the multi-query extension keyed by (Q_i, s_k)
//     pairs, answering a whole set of SSD queries in a single pass over R.
package stratified

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/query"
	"repro/internal/sampling"
)

// WeightedTuples is the value type flowing from combiners to reducers: an
// intermediate sample with the size of its source set.
type WeightedTuples = sampling.Weighted[dataset.Tuple]

// Options configures a sampling run.
type Options struct {
	// Seed makes the run reproducible.
	Seed int64
	// Naive disables the combiner, shuffling every matching tuple
	// (Figure 1). The default (false) is the MR-SQE of Figure 2.
	Naive bool
	// Exclude removes individuals (by ID) from consideration before
	// sampling; the CPS residual phase uses it to avoid re-selecting
	// already-chosen tuples.
	Exclude map[int64]struct{}
}

// stratumOut is one reducer output: the final sample of one stratum.
type stratumOut struct {
	Stratum int
	Sample  []dataset.Tuple
}

// buildSQEJob constructs the MR-SQE job for one query. The coordinator and
// remote workers both build jobs through this function (workers via the
// "mr-sqe" maker in portable.go), which is what keeps task execution
// identical across backends.
func buildSQEJob(q *query.SSD, schema *dataset.Schema, opts Options) (*mapreduce.Job[dataset.Tuple, int, WeightedTuples, stratumOut], error) {
	preds, err := q.Compile(schema)
	if err != nil {
		return nil, err
	}
	freqs := make([]int, len(q.Strata))
	for k, s := range q.Strata {
		freqs[k] = s.Freq
	}

	job := &mapreduce.Job[dataset.Tuple, int, WeightedTuples, stratumOut]{
		Name: "mr-sqe:" + q.Name,
		Mapper: mapreduce.MapperFunc[dataset.Tuple, int, WeightedTuples](
			func(_ *mapreduce.TaskContext, t dataset.Tuple, emit func(int, WeightedTuples)) {
				if _, skip := opts.Exclude[t.ID]; skip {
					return
				}
				if k := query.MatchStratum(preds, &t); k >= 0 {
					emit(k, sampling.Singleton(t))
				}
			}),
		Reducer: mapreduce.ReducerFunc[int, WeightedTuples, stratumOut](
			func(ctx *mapreduce.TaskContext, k int, vs []WeightedTuples, emit func(stratumOut)) {
				emit(stratumOut{Stratum: k, Sample: sampling.UnifiedSample(vs, freqs[k], ctx.Rand)})
			}),
		KeyString: func(k int) string { return fmt.Sprintf("s%06d", k) },
	}
	// Whole-split fast path (fastmap.go): same emission stream, amortized
	// allocations. Present on every backend because workers rebuild the job
	// through this same function.
	job.BatchMapper = &sqeBatchMapper{preds: preds, exclude: opts.Exclude}
	if !opts.Naive {
		job.Combiner = combiner(func(k int) int { return freqs[k] })
	}
	return job, nil
}

// RunSQE answers a single SSD query over the distributed population and
// returns the answer plus the job's metrics.
func RunSQE(c *mapreduce.Cluster, q *query.SSD, schema *dataset.Schema, splits []dataset.Split, opts Options) (*query.Answer, mapreduce.Metrics, error) {
	job, err := buildSQEJob(q, schema, opts)
	if err != nil {
		return nil, mapreduce.Metrics{}, err
	}
	job.Seed = opts.Seed
	if err := makePortable(job, "mr-sqe", sqeConfig{
		Query: q, Fields: schema.Fields(),
		Naive: opts.Naive, Exclude: sortedExclude(opts.Exclude),
	}); err != nil {
		return nil, mapreduce.Metrics{}, err
	}

	res, err := mapreduce.Run(c, job, tupleSplits(splits))
	if err != nil {
		return nil, mapreduce.Metrics{}, err
	}
	ans := query.NewAnswer(len(q.Strata))
	for _, out := range res.Output {
		ans.Strata[out.Stratum] = out.Sample
	}
	return ans, res.Metrics, nil
}

// combiner builds the MR-SQE combine function: it locally selects an
// intermediate sample of capacity freq(key) using Algorithm R over the map
// task's tuples for that key and tags it with the number of tuples it saw.
// Each emitted intermediate sample's size is observed into the job's
// "reservoir_size" histogram (Metrics.Custom) — the paper's
// intermediate-sample-size measurement.
func combiner[K comparable](freq func(K) int) mapreduce.Combiner[K, WeightedTuples] {
	return mapreduce.CombinerFunc[K, WeightedTuples](
		func(ctx *mapreduce.TaskContext, k K, vs []WeightedTuples, emit func(WeightedTuples)) {
			n := sampling.TotalN(vs)
			target := freq(k)
			exhaustive := true
			for _, w := range vs {
				if w.N != int64(len(w.Sample)) {
					exhaustive = false
					break
				}
			}
			if exhaustive {
				// Common case: every part is raw map output (singletons),
				// so stream the tuples through the reservoir, as in the
				// paper's combine function. AddSlice rides Algorithm L's
				// skip counts, so a full-split scan costs O(k(1+log(n/k)))
				// RNG draws rather than one per tuple.
				res := sampling.NewReservoir[dataset.Tuple](target, ctx.Rand)
				for _, w := range vs {
					res.AddSlice(w.Sample)
				}
				sample := res.Sample()
				ctx.Observe("reservoir_size", int64(len(sample)))
				emit(WeightedTuples{Sample: sample, N: n})
				return
			}
			// Some parts were already subsampled (a combiner re-run):
			// merge them without bias via the unified sampler.
			sample := sampling.UnifiedSample(vs, target, ctx.Rand)
			ctx.Observe("reservoir_size", int64(len(sample)))
			emit(WeightedTuples{Sample: sample, N: n})
		})
}

// tupleSplits converts typed dataset splits to the engine's input shape.
func tupleSplits(splits []dataset.Split) [][]dataset.Tuple {
	out := make([][]dataset.Tuple, len(splits))
	for i, s := range splits {
		out[i] = s
	}
	return out
}
