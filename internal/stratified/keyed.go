package stratified

import (
	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/sampling"
)

// Classifier assigns a tuple to at most one sampling class per target, or
// rejects it. It may emit the same tuple under several keys (MR-CPS residual
// sampling classifies a tuple once per deficient survey).
type Classifier func(t *dataset.Tuple, emit func(key string))

// keyedOut is one reducer output of a keyed-sampling job.
type keyedOut struct {
	Key    string
	Sample []dataset.Tuple
}

// RunKeyed draws, in one MapReduce pass, a simple random sample of freqs[k]
// tuples from every class k the classifier defines. It is the engine behind
// MR-SQE generalised to arbitrary keys; MR-CPS uses it to answer the derived
// query Q′ (classes are stratum selections, avoiding the construction of the
// large conjunction formulas φ(σ)) and to sample residual deficits.
//
// Classes absent from freqs are dropped at the map stage.
func RunKeyed(c *mapreduce.Cluster, classify Classifier, freqs map[string]int, splits []dataset.Split, opts Options) (map[string][]dataset.Tuple, mapreduce.Metrics, error) {
	job := &mapreduce.Job[dataset.Tuple, string, WeightedTuples, keyedOut]{
		Name: "mr-keyed-sample",
		Seed: opts.Seed,
		Mapper: mapreduce.MapperFunc[dataset.Tuple, string, WeightedTuples](
			func(_ *mapreduce.TaskContext, t dataset.Tuple, emit func(string, WeightedTuples)) {
				if _, skip := opts.Exclude[t.ID]; skip {
					return
				}
				classify(&t, func(key string) {
					if _, want := freqs[key]; want {
						emit(key, sampling.Singleton(t))
					}
				})
			}),
		Reducer: mapreduce.ReducerFunc[string, WeightedTuples, keyedOut](
			func(ctx *mapreduce.TaskContext, k string, vs []WeightedTuples, emit func(keyedOut)) {
				emit(keyedOut{Key: k, Sample: sampling.UnifiedSample(vs, freqs[k], ctx.Rand)})
			}),
		KeyString: func(k string) string { return k },
	}
	if !opts.Naive {
		job.Combiner = combiner(func(k string) int { return freqs[k] })
	}
	res, err := mapreduce.Run(c, job, tupleSplits(splits))
	if err != nil {
		return nil, mapreduce.Metrics{}, err
	}
	out := make(map[string][]dataset.Tuple, len(res.Output))
	for _, o := range res.Output {
		out[o.Key] = o.Sample
	}
	return out, res.Metrics, nil
}
