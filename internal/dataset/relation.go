package dataset

import (
	"fmt"
	"sort"
)

// Relation is a set of individuals over a schema — the population R of the
// paper. Tuples are identified by their ID; a relation never stores two
// tuples with the same ID.
type Relation struct {
	schema *Schema
	tuples []Tuple
	ids    map[int64]struct{}
}

// NewRelation creates an empty relation over the schema.
func NewRelation(schema *Schema) *Relation {
	return &Relation{schema: schema, ids: make(map[int64]struct{})}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of individuals.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the underlying tuple slice. Callers must not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Tuple returns the i-th tuple in insertion order.
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Add validates the tuple against the schema and appends it. Duplicate IDs
// and domain violations are rejected.
func (r *Relation) Add(t Tuple) error {
	if err := t.ValidFor(r.schema); err != nil {
		return err
	}
	if _, dup := r.ids[t.ID]; dup {
		return fmt.Errorf("dataset: duplicate tuple id %d", t.ID)
	}
	r.ids[t.ID] = struct{}{}
	r.tuples = append(r.tuples, t)
	return nil
}

// MustAdd is like Add but panics on error; for tests and generators that
// construct tuples known to be valid.
func (r *Relation) MustAdd(t Tuple) {
	if err := r.Add(t); err != nil {
		panic(err)
	}
}

// Contains reports whether the relation holds a tuple with the given ID.
func (r *Relation) Contains(id int64) bool {
	_, ok := r.ids[id]
	return ok
}

// Select returns the tuples satisfying pred, in insertion order. It is the
// selection operator σ_φ(R) with a compiled predicate.
func (r *Relation) Select(pred func(*Tuple) bool) []Tuple {
	var out []Tuple
	for i := range r.tuples {
		if pred(&r.tuples[i]) {
			out = append(out, r.tuples[i])
		}
	}
	return out
}

// Count returns |σ_pred(R)| without materialising the selection.
func (r *Relation) Count(pred func(*Tuple) bool) int {
	n := 0
	for i := range r.tuples {
		if pred(&r.tuples[i]) {
			n++
		}
	}
	return n
}

// SortByID orders the tuples by ID, giving the relation a canonical order
// independent of generation interleaving.
func (r *Relation) SortByID() {
	sort.Slice(r.tuples, func(i, j int) bool { return r.tuples[i].ID < r.tuples[j].ID })
}
