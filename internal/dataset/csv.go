package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the relation as CSV with an "id,name,<attrs...>" header in
// schema order.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, r.schema.NumFields()+2)
	header = append(header, "id", "name")
	for j := 0; j < r.schema.NumFields(); j++ {
		header = append(header, r.schema.Field(j).Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := range r.tuples {
		t := &r.tuples[i]
		row[0] = strconv.FormatInt(t.ID, 10)
		row[1] = t.Name
		for j, v := range t.Attrs {
			row[j+2] = strconv.FormatInt(v, 10)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a relation in the WriteCSV format. The header's attribute
// columns must match the schema's fields exactly (same names, same order);
// every tuple is validated against the schema's domains.
func ReadCSV(rd io.Reader, schema *Schema) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = schema.NumFields() + 2
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if header[0] != "id" || header[1] != "name" {
		return nil, fmt.Errorf("dataset: CSV must start with id,name columns, got %v", header[:2])
	}
	for j := 0; j < schema.NumFields(); j++ {
		if header[j+2] != schema.Field(j).Name {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, schema expects %q",
				j+2, header[j+2], schema.Field(j).Name)
		}
	}
	rel := NewRelation(schema)
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return rel, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
		id, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: bad id %q", line, row[0])
		}
		attrs := make([]int64, schema.NumFields())
		for j := range attrs {
			attrs[j], err = strconv.ParseInt(row[j+2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d: bad %s value %q",
					line, schema.Field(j).Name, row[j+2])
			}
		}
		if err := rel.Add(Tuple{ID: id, Name: row[1], Attrs: attrs}); err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
	}
}
