package dataset

import (
	"math/rand"
	"strings"
	"testing"
)

func mkTuple(id int64, attrs ...int64) Tuple {
	return Tuple{ID: id, Attrs: attrs}
}

func TestRelationAddValidates(t *testing.T) {
	r := NewRelation(testSchema(t))
	if err := r.Add(mkTuple(1, 30, 50000, 1)); err != nil {
		t.Fatalf("valid add: %v", err)
	}
	if err := r.Add(mkTuple(1, 40, 60000, 0)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate-id error, got %v", err)
	}
	if err := r.Add(mkTuple(2, 500, 0, 0)); err == nil || !strings.Contains(err.Error(), "outside domain") {
		t.Fatalf("want domain error, got %v", err)
	}
	if err := r.Add(mkTuple(3, 30, 50000)); err == nil || !strings.Contains(err.Error(), "attrs") {
		t.Fatalf("want arity error, got %v", err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if !r.Contains(1) || r.Contains(2) {
		t.Fatal("Contains misbehaves")
	}
}

func TestRelationSelectAndCount(t *testing.T) {
	r := NewRelation(testSchema(t))
	for i := int64(0); i < 10; i++ {
		r.MustAdd(mkTuple(i, i*10, 1000*i, i%2))
	}
	even := func(t *Tuple) bool { return t.Attrs[2] == 0 }
	sel := r.Select(even)
	if len(sel) != 5 {
		t.Fatalf("Select returned %d, want 5", len(sel))
	}
	if n := r.Count(even); n != 5 {
		t.Fatalf("Count = %d, want 5", n)
	}
}

func TestRelationSortByID(t *testing.T) {
	r := NewRelation(testSchema(t))
	for _, id := range []int64{5, 1, 3, 2, 4} {
		r.MustAdd(mkTuple(id, 1, 1, 1))
	}
	r.SortByID()
	for i, want := range []int64{1, 2, 3, 4, 5} {
		if got := r.Tuple(i).ID; got != want {
			t.Fatalf("tuple %d has ID %d, want %d", i, got, want)
		}
	}
}

func TestTupleClone(t *testing.T) {
	orig := mkTuple(7, 1, 2, 3)
	cl := orig.Clone()
	cl.Attrs[0] = 99
	if orig.Attrs[0] != 1 {
		t.Fatal("Clone must deep-copy attrs")
	}
}

func TestTupleByteSizeAndString(t *testing.T) {
	tp := Tuple{ID: 1, Name: "ab", Attrs: []int64{1, 2}}
	// varint id (1) + name prefix+bytes (1+2) + attr count (1) + attrs (1+1)
	if got := tp.ByteSize(); got != 7 {
		t.Fatalf("ByteSize = %d, want 7", got)
	}
	if s := tp.String(); !strings.Contains(s, "#1(ab)[1 2]") {
		t.Fatalf("String = %q", s)
	}
}

func partitionTestRelation(t *testing.T, n int) *Relation {
	t.Helper()
	r := NewRelation(testSchema(t))
	for i := int64(0); i < int64(n); i++ {
		r.MustAdd(mkTuple(i, i%120, i, i%2))
	}
	return r
}

func checkUnion(t *testing.T, r *Relation, splits []Split) {
	t.Helper()
	seen := make(map[int64]int)
	total := 0
	for _, s := range splits {
		for _, tp := range s {
			seen[tp.ID]++
			total++
		}
	}
	if total != r.Len() {
		t.Fatalf("splits hold %d tuples, relation has %d", total, r.Len())
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("tuple %d appears %d times", id, c)
		}
	}
}

func TestPartitionStrategiesPreserveUnion(t *testing.T) {
	r := partitionTestRelation(t, 101)
	rng := rand.New(rand.NewSource(1))
	for _, strat := range []Partitioning{RoundRobin, Contiguous, Skewed, ShuffledContiguous} {
		splits, err := Partition(r, 7, strat, rng)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(splits) != 7 {
			t.Fatalf("%v: %d splits, want 7", strat, len(splits))
		}
		checkUnion(t, r, splits)
	}
}

func TestPartitionRoundRobinBalance(t *testing.T) {
	r := partitionTestRelation(t, 100)
	splits, err := Partition(r, 4, RoundRobin, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, sz := range SplitSizes(splits) {
		if sz != 25 {
			t.Fatalf("split %d has %d tuples, want 25", i, sz)
		}
	}
}

func TestPartitionSkewedIsSkewed(t *testing.T) {
	r := partitionTestRelation(t, 1000)
	splits, err := Partition(r, 4, Skewed, nil)
	if err != nil {
		t.Fatal(err)
	}
	sizes := SplitSizes(splits)
	if !(sizes[0] < sizes[1] && sizes[1] < sizes[2] && sizes[2] < sizes[3]) {
		t.Fatalf("sizes %v are not increasing", sizes)
	}
}

func TestPartitionErrors(t *testing.T) {
	r := partitionTestRelation(t, 10)
	if _, err := Partition(r, 0, RoundRobin, nil); err == nil {
		t.Fatal("want error for 0 splits")
	}
	if _, err := Partition(r, 2, ShuffledContiguous, nil); err == nil {
		t.Fatal("want error for nil rng with ShuffledContiguous")
	}
	if _, err := Partition(r, 2, Partitioning(99), nil); err == nil {
		t.Fatal("want error for unknown strategy")
	}
}

func TestPartitioningString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || Partitioning(99).String() == "" {
		t.Fatal("Partitioning.String misbehaves")
	}
}

func TestParsePartitioning(t *testing.T) {
	for _, p := range []Partitioning{RoundRobin, Contiguous, Skewed, ShuffledContiguous} {
		got, err := ParsePartitioning(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip of %v: %v, %v", p, got, err)
		}
	}
	if _, err := ParsePartitioning("nope"); err == nil {
		t.Fatal("want error for unknown name")
	}
}
