package dataset

import (
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Field{Name: "age", Min: 0, Max: 120},
		Field{Name: "income", Min: 0, Max: 1000000},
		Field{Name: "gender", Min: 0, Max: 1},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	_, err := NewSchema(
		Field{Name: "a", Min: 0, Max: 1},
		Field{Name: "a", Min: 0, Max: 2},
	)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate-field error, got %v", err)
	}
}

func TestNewSchemaRejectsEmptyDomain(t *testing.T) {
	_, err := NewSchema(Field{Name: "a", Min: 5, Max: 4})
	if err == nil || !strings.Contains(err.Error(), "empty domain") {
		t.Fatalf("want empty-domain error, got %v", err)
	}
}

func TestNewSchemaRejectsEmptyName(t *testing.T) {
	_, err := NewSchema(Field{Name: "", Min: 0, Max: 1})
	if err == nil {
		t.Fatal("want error for empty field name")
	}
}

func TestSchemaIndexAndField(t *testing.T) {
	s := testSchema(t)
	if n := s.NumFields(); n != 3 {
		t.Fatalf("NumFields = %d, want 3", n)
	}
	i, ok := s.Index("income")
	if !ok || i != 1 {
		t.Fatalf("Index(income) = %d, %v", i, ok)
	}
	if _, ok := s.Index("missing"); ok {
		t.Fatal("Index(missing) should not exist")
	}
	if f := s.Field(2); f.Name != "gender" || f.Max != 1 {
		t.Fatalf("Field(2) = %+v", f)
	}
	if !s.Has("age") || s.Has("nope") {
		t.Fatal("Has misbehaves")
	}
}

func TestSchemaFieldsReturnsCopy(t *testing.T) {
	s := testSchema(t)
	fs := s.Fields()
	fs[0].Name = "mutated"
	if s.Field(0).Name != "age" {
		t.Fatal("Fields() must return a copy")
	}
}

func TestFieldHelpers(t *testing.T) {
	f := Field{Name: "x", Min: -5, Max: 5}
	if !f.Contains(-5) || !f.Contains(5) || f.Contains(6) || f.Contains(-6) {
		t.Fatal("Contains wrong at boundaries")
	}
	if w := f.Width(); w != 11 {
		t.Fatalf("Width = %d, want 11", w)
	}
}

func TestSchemaString(t *testing.T) {
	s := testSchema(t)
	got := s.String()
	if !strings.Contains(got, "age[0..120]") || !strings.HasPrefix(got, "(") {
		t.Fatalf("String() = %q", got)
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema should panic on invalid schema")
		}
	}()
	MustSchema(Field{Name: "bad", Min: 1, Max: 0})
}
