package dataset

import (
	"fmt"
	"math/rand"
	"runtime"
)

// A Split is the portion of the population stored on one machine of the
// distributed system. The paper's R = R1 ∪ ... ∪ RK.
type Split []Tuple

// Partitioning describes how a relation is distributed over machines. The
// paper stresses that data is typically NOT distributed randomly (machines in
// a geographic region store that region's data), which is exactly the case
// where naive per-split sampling is biased — so we support both layouts.
type Partitioning int

const (
	// RoundRobin deals tuples to splits in turn; splits are near-equal in
	// size and each is close to a random sample of R.
	RoundRobin Partitioning = iota
	// Contiguous assigns consecutive runs of tuples to each split,
	// modelling locality-correlated storage (the adversarial case for
	// naive distributed sampling).
	Contiguous
	// Skewed gives split i a share proportional to i+1, modelling a
	// cluster with heterogeneous shard sizes.
	Skewed
	// ShuffledContiguous randomly permutes the tuples first and then cuts
	// contiguous runs; sizes equal Contiguous but content is random.
	ShuffledContiguous
)

// ParsePartitioning maps a strategy name (as produced by String) back to the
// strategy; for CLI flags.
func ParsePartitioning(name string) (Partitioning, error) {
	for _, p := range []Partitioning{RoundRobin, Contiguous, Skewed, ShuffledContiguous} {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("dataset: unknown partitioning %q (want round-robin, contiguous, skewed or shuffled-contiguous)", name)
}

// String names the partitioning strategy.
func (p Partitioning) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case Contiguous:
		return "contiguous"
	case Skewed:
		return "skewed"
	case ShuffledContiguous:
		return "shuffled-contiguous"
	default:
		return fmt.Sprintf("Partitioning(%d)", int(p))
	}
}

// Partition splits the relation's tuples into k splits using the strategy.
// rng is only consulted by ShuffledContiguous and may be nil otherwise.
// The union of the returned splits is exactly the relation.
func Partition(r *Relation, k int, strategy Partitioning, rng *rand.Rand) ([]Split, error) {
	if k <= 0 {
		return nil, fmt.Errorf("dataset: cannot partition into %d splits", k)
	}
	tuples := r.Tuples()
	switch strategy {
	case RoundRobin:
		splits := make([]Split, k)
		for i, t := range tuples {
			splits[i%k] = append(splits[i%k], t)
		}
		return splits, nil
	case Contiguous:
		return cutContiguous(tuples, k), nil
	case ShuffledContiguous:
		if rng == nil {
			return nil, fmt.Errorf("dataset: ShuffledContiguous requires a rand source")
		}
		perm := make([]Tuple, len(tuples))
		copy(perm, tuples)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		return cutContiguous(perm, k), nil
	case Skewed:
		total := 0
		for i := 1; i <= k; i++ {
			total += i
		}
		splits := make([]Split, k)
		start := 0
		for i := 0; i < k; i++ {
			share := len(tuples) * (i + 1) / total
			end := start + share
			if i == k-1 {
				end = len(tuples)
			}
			if end > len(tuples) {
				end = len(tuples)
			}
			splits[i] = append(Split(nil), tuples[start:end]...)
			start = end
		}
		return splits, nil
	default:
		return nil, fmt.Errorf("dataset: unknown partitioning %v", strategy)
	}
}

func cutContiguous(tuples []Tuple, k int) []Split {
	splits := make([]Split, k)
	n := len(tuples)
	for i := 0; i < k; i++ {
		lo := n * i / k
		hi := n * (i + 1) / k
		splits[i] = append(Split(nil), tuples[lo:hi]...)
	}
	return splits
}

// DefaultSplits is the default split count for a pass over a resident
// population: two map tasks per simulated slave (the historical strata
// default) but never fewer than two per core, so a pass has enough map tasks
// to saturate the machine even when -slaves is small. The one-shot CLI and
// the serve daemon both take their default from here — the split structure
// feeds per-task seeds and per-split combiners, so the two paths must agree
// on it for their answers to stay byte-identical.
func DefaultSplits(slaves int) int {
	k := 2 * slaves
	if c := 2 * runtime.GOMAXPROCS(0); c > k {
		k = c
	}
	if k < 1 {
		k = 1
	}
	return k
}

// SplitSizes returns the length of each split.
func SplitSizes(splits []Split) []int {
	sizes := make([]int, len(splits))
	for i, s := range splits {
		sizes[i] = len(s)
	}
	return sizes
}
