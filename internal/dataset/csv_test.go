package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	r := NewRelation(testSchema(t))
	r.MustAdd(Tuple{ID: 1, Name: "ann", Attrs: []int64{30, 50000, 0}})
	r.MustAdd(Tuple{ID: 2, Name: "bob", Attrs: []int64{40, 60000, 1}})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, r.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("Len = %d", back.Len())
	}
	for i := 0; i < 2; i++ {
		a, b := r.Tuple(i), back.Tuple(i)
		if a.ID != b.ID || a.Name != b.Name {
			t.Fatalf("tuple %d differs: %v vs %v", i, a, b)
		}
		for j := range a.Attrs {
			if a.Attrs[j] != b.Attrs[j] {
				t.Fatalf("tuple %d attr %d differs", i, j)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	schema := testSchema(t)
	cases := []string{
		"",                                                // empty
		"x,name,age,income,gender\n",                      // wrong first column
		"id,name,age,wrong,gender\n",                      // wrong attr name
		"id,name,age,income,gender\nzz,a,1,1,0",           // bad id
		"id,name,age,income,gender\n1,a,x,1,0",            // bad attr
		"id,name,age,income,gender\n1,a,999,1,0",          // out of domain
		"id,name,age,income,gender\n1,a,1,1,0\n1,b,2,2,1", // dup id
	}
	for _, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src), schema); err == nil {
			t.Errorf("ReadCSV(%q) should fail", src)
		}
	}
}

func TestReadCSVRejectsWrongArity(t *testing.T) {
	schema := testSchema(t)
	src := "id,name,age,income,gender\n1,a,1,1\n"
	if _, err := ReadCSV(strings.NewReader(src), schema); err == nil {
		t.Fatal("want arity error")
	}
}
