package dataset

import (
	"fmt"
	"strings"

	"repro/internal/wire"
)

// Tuple represents one individual of the surveyed population. ID is a unique
// identifier (the paper's "id" attribute), Name a display name, and Attrs the
// integer attribute values in schema order.
type Tuple struct {
	ID    int64
	Name  string
	Attrs []int64
}

// Attr returns the value of the i-th attribute.
func (t *Tuple) Attr(i int) int64 { return t.Attrs[i] }

// Clone returns a deep copy of the tuple.
func (t *Tuple) Clone() Tuple {
	attrs := make([]int64, len(t.Attrs))
	copy(attrs, t.Attrs)
	return Tuple{ID: t.ID, Name: t.Name, Attrs: attrs}
}

// ByteSize is the exact wire size of the tuple in the binary codec (see
// AppendWire): varint id, length-prefixed name, attr count, varint attrs.
// The MapReduce engine uses it for shuffle accounting, so it must track the
// real encoding — gob-era code guessed 8+len(Name)+8*len(Attrs) and omitted
// the name length prefix and varint widths.
func (t Tuple) ByteSize() int {
	n := wire.SizeVarint(t.ID) +
		wire.SizeUvarint(uint64(len(t.Name))) + len(t.Name) +
		wire.SizeUvarint(uint64(len(t.Attrs)))
	for _, v := range t.Attrs {
		n += wire.SizeVarint(v)
	}
	return n
}

// AppendWire appends the tuple's standalone binary encoding: zigzag-varint
// id, length-prefixed name, attr count, then each attr as a zigzag varint.
// Batched tuples use the denser TupleBatch layout instead.
func (t *Tuple) AppendWire(b []byte) []byte {
	b = wire.AppendVarint(b, t.ID)
	b = wire.AppendString(b, t.Name)
	b = wire.AppendUvarint(b, uint64(len(t.Attrs)))
	for _, v := range t.Attrs {
		b = wire.AppendVarint(b, v)
	}
	return b
}

// ReadTupleWire decodes one AppendWire-encoded tuple.
func ReadTupleWire(r *wire.Reader) (Tuple, error) {
	var t Tuple
	t.ID = r.Varint()
	t.Name = r.String()
	if n := r.Count(1); n > 0 {
		t.Attrs = make([]int64, n)
		for i := range t.Attrs {
			t.Attrs[i] = r.Varint()
		}
	}
	return t, r.Err()
}

// String renders the tuple for debugging.
func (t Tuple) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d", t.ID)
	if t.Name != "" {
		fmt.Fprintf(&b, "(%s)", t.Name)
	}
	b.WriteByte('[')
	for i, v := range t.Attrs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(']')
	return b.String()
}

// ValidFor reports an error if the tuple does not conform to the schema:
// wrong arity or a value outside its field's domain.
func (t *Tuple) ValidFor(s *Schema) error {
	if len(t.Attrs) != s.NumFields() {
		return fmt.Errorf("dataset: tuple #%d has %d attrs, schema has %d fields", t.ID, len(t.Attrs), s.NumFields())
	}
	for i, v := range t.Attrs {
		if f := s.Field(i); !f.Contains(v) {
			return fmt.Errorf("dataset: tuple #%d attr %s=%d outside domain [%d, %d]", t.ID, f.Name, v, f.Min, f.Max)
		}
	}
	return nil
}
