package dataset

import (
	"fmt"
	"strings"
)

// Tuple represents one individual of the surveyed population. ID is a unique
// identifier (the paper's "id" attribute), Name a display name, and Attrs the
// integer attribute values in schema order.
type Tuple struct {
	ID    int64
	Name  string
	Attrs []int64
}

// Attr returns the value of the i-th attribute.
func (t *Tuple) Attr(i int) int64 { return t.Attrs[i] }

// Clone returns a deep copy of the tuple.
func (t *Tuple) Clone() Tuple {
	attrs := make([]int64, len(t.Attrs))
	copy(attrs, t.Attrs)
	return Tuple{ID: t.ID, Name: t.Name, Attrs: attrs}
}

// ByteSize estimates the wire size of the tuple when shuffled between
// machines: 8 bytes per integer attribute plus the id and the name bytes.
// The MapReduce engine uses it for shuffle accounting.
func (t Tuple) ByteSize() int {
	return 8 + len(t.Name) + 8*len(t.Attrs)
}

// String renders the tuple for debugging.
func (t Tuple) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d", t.ID)
	if t.Name != "" {
		fmt.Fprintf(&b, "(%s)", t.Name)
	}
	b.WriteByte('[')
	for i, v := range t.Attrs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(']')
	return b.String()
}

// ValidFor reports an error if the tuple does not conform to the schema:
// wrong arity or a value outside its field's domain.
func (t *Tuple) ValidFor(s *Schema) error {
	if len(t.Attrs) != s.NumFields() {
		return fmt.Errorf("dataset: tuple #%d has %d attrs, schema has %d fields", t.ID, len(t.Attrs), s.NumFields())
	}
	for i, v := range t.Attrs {
		if f := s.Field(i); !f.Contains(v) {
			return fmt.Errorf("dataset: tuple #%d attr %s=%d outside domain [%d, %d]", t.ID, f.Name, v, f.Min, f.Max)
		}
	}
	return nil
}
