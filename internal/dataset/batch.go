package dataset

import (
	"fmt"

	"repro/internal/wire"
)

// TupleBatch is the columnar (struct-of-arrays) form of a []Tuple with
// uniform arity: ids, names and a flat attribute matrix in row-major order
// with a fixed stride. It is the unit the binary codec ships map input
// splits and shuffle buckets in — classification and predicate evaluation
// over a batch are tight loops over typed slices, and decoding a batch of n
// tuples costs O(1) slice allocations instead of n per-tuple ones.
type TupleBatch struct {
	IDs   []int64
	Names []string
	// Attrs holds all attribute values row-major: tuple i's attributes are
	// Attrs[i*Stride : (i+1)*Stride].
	Attrs  []int64
	Stride int
}

// Len returns the number of tuples in the batch.
func (b *TupleBatch) Len() int { return len(b.IDs) }

// Row returns tuple i's attribute row as a capped view into the flat matrix
// — no copy, and appends through the view cannot clobber the next row.
func (b *TupleBatch) Row(i int) []int64 {
	s := b.Stride
	return b.Attrs[i*s : (i+1)*s : (i+1)*s]
}

// BatchOfTuples converts a row-oriented slice into columnar form. ok is
// false when the tuples have ragged arity (no uniform stride exists), in
// which case callers fall back to the per-tuple encoding.
func BatchOfTuples(ts []Tuple) (TupleBatch, bool) {
	var b TupleBatch
	if len(ts) == 0 {
		return b, true
	}
	stride := len(ts[0].Attrs)
	for i := range ts {
		if len(ts[i].Attrs) != stride {
			return TupleBatch{}, false
		}
	}
	b.Stride = stride
	b.IDs = make([]int64, len(ts))
	b.Names = make([]string, len(ts))
	b.Attrs = make([]int64, len(ts)*stride)
	for i := range ts {
		b.IDs[i] = ts[i].ID
		b.Names[i] = ts[i].Name
		copy(b.Attrs[i*stride:], ts[i].Attrs)
	}
	return b, true
}

// Tuples converts the batch back to row-oriented form. Each tuple's Attrs
// is a capped view into the batch's flat matrix — one backing allocation
// for the whole batch, so callers must not let tuples outlive a recycled
// decode buffer (frame buffers on the read path are never recycled for
// exactly this reason).
func (b *TupleBatch) Tuples() []Tuple {
	ts := make([]Tuple, b.Len())
	for i := range ts {
		ts[i] = Tuple{ID: b.IDs[i], Name: b.Names[i]}
		if b.Stride > 0 {
			ts[i].Attrs = b.Row(i)
		}
	}
	return ts
}

// AppendWire appends the batch's binary encoding: count, stride, ids as
// delta zigzag varints (populations are mostly id-sorted, so deltas stay
// 1-byte), names length-prefixed, then the attribute matrix column-major —
// values within one attribute column are near each other's magnitude, which
// keeps varints short.
func (b *TupleBatch) AppendWire(buf []byte) []byte {
	n := b.Len()
	buf = wire.AppendUvarint(buf, uint64(n))
	buf = wire.AppendUvarint(buf, uint64(b.Stride))
	prev := int64(0)
	for _, id := range b.IDs {
		buf = wire.AppendVarint(buf, id-prev)
		prev = id
	}
	for _, name := range b.Names {
		buf = wire.AppendString(buf, name)
	}
	for col := 0; col < b.Stride; col++ {
		for row := 0; row < n; row++ {
			buf = wire.AppendVarint(buf, b.Attrs[row*b.Stride+col])
		}
	}
	return buf
}

// ReadTupleBatchWire decodes one AppendWire-encoded batch.
func ReadTupleBatchWire(r *wire.Reader) (TupleBatch, error) {
	var b TupleBatch
	n := r.Count(1)
	stride := r.Uvarint()
	if err := r.Err(); err != nil {
		return b, err
	}
	// Each attr cell costs ≥1 byte, so a hostile stride can't force a huge
	// allocation past the remaining payload.
	if n > 0 && stride > uint64(r.Remaining()/n+1) {
		return b, fmt.Errorf("dataset: batch stride %d exceeds payload: %w", stride, wire.ErrCorrupt)
	}
	b.Stride = int(stride)
	if n == 0 {
		return b, r.Err()
	}
	b.IDs = make([]int64, n)
	prev := int64(0)
	for i := range b.IDs {
		prev += r.Varint()
		b.IDs[i] = prev
	}
	b.Names = make([]string, n)
	for i := range b.Names {
		b.Names[i] = r.String()
	}
	b.Attrs = make([]int64, n*b.Stride)
	for col := 0; col < b.Stride; col++ {
		for row := 0; row < n; row++ {
			b.Attrs[row*b.Stride+col] = r.Varint()
		}
	}
	return b, r.Err()
}
