package dataset

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/wire"
)

func sampleTuples() []Tuple {
	return []Tuple{
		{ID: 0, Name: "a", Attrs: []int64{1, 500}},
		{ID: 1, Attrs: []int64{0, -3}},
		{ID: 5, Name: "carol", Attrs: []int64{1, 999}},
		{ID: 1000000, Name: "x", Attrs: []int64{0, 0}},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	ts := sampleTuples()
	b, ok := BatchOfTuples(ts)
	if !ok {
		t.Fatal("uniform tuples reported ragged")
	}
	buf := b.AppendWire(nil)
	got, err := ReadTupleBatchWire(wire.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	back := got.Tuples()
	for i := range ts {
		if ts[i].ID != back[i].ID || ts[i].Name != back[i].Name ||
			!reflect.DeepEqual(ts[i].Attrs, back[i].Attrs) {
			t.Errorf("tuple %d: got %v, want %v", i, back[i], ts[i])
		}
	}
}

func TestBatchEmptyAndRagged(t *testing.T) {
	b, ok := BatchOfTuples(nil)
	if !ok || b.Len() != 0 {
		t.Error("empty slice should batch fine")
	}
	buf := b.AppendWire(nil)
	got, err := ReadTupleBatchWire(wire.NewReader(buf))
	if err != nil || got.Len() != 0 {
		t.Errorf("empty batch round trip: %v len=%d", err, got.Len())
	}
	if _, ok := BatchOfTuples([]Tuple{{Attrs: []int64{1}}, {Attrs: []int64{1, 2}}}); ok {
		t.Error("ragged tuples should not batch")
	}
}

func TestBatchRowIsView(t *testing.T) {
	b, _ := BatchOfTuples(sampleTuples())
	row := b.Row(1)
	row[0] = 42
	if b.Attrs[1*b.Stride] != 42 {
		t.Error("Row returned a copy, want a view")
	}
}

func TestBatchCorruptRejected(t *testing.T) {
	b, _ := BatchOfTuples(sampleTuples())
	buf := b.AppendWire(nil)
	for cut := 1; cut < len(buf); cut += 3 {
		if _, err := ReadTupleBatchWire(wire.NewReader(buf[:cut])); err == nil {
			t.Errorf("truncation at %d not rejected", cut)
		}
	}
	// A hostile stride on a tiny payload must error, not allocate.
	evil := wire.AppendUvarint(nil, 2)
	evil = wire.AppendUvarint(evil, 1<<40)
	if _, err := ReadTupleBatchWire(wire.NewReader(evil)); !errors.Is(err, wire.ErrCorrupt) {
		t.Errorf("hostile stride: %v, want ErrCorrupt", err)
	}
}

// TestByteSizeMatchesEncoding is the shuffle-accounting honesty check:
// Tuple.ByteSize must equal the standalone encoded length exactly.
func TestByteSizeMatchesEncoding(t *testing.T) {
	for _, tu := range append(sampleTuples(),
		Tuple{ID: -9e15, Name: "негатив", Attrs: []int64{1 << 40, -1 << 40, 0}},
		Tuple{},
	) {
		enc := tu.AppendWire(nil)
		if tu.ByteSize() != len(enc) {
			t.Errorf("ByteSize(%v) = %d, encoded length %d", tu, tu.ByteSize(), len(enc))
		}
		got, err := ReadTupleWire(wire.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != tu.ID || got.Name != tu.Name || !reflect.DeepEqual(got.Attrs, tu.Attrs) {
			t.Errorf("tuple round trip: got %v, want %v", got, tu)
		}
	}
}
