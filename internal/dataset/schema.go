// Package dataset defines the population model shared by all other packages:
// a schema of integer-valued attributes, tuples representing individuals of a
// social network, relations holding tuples, and helpers for partitioning a
// relation into the splits a distributed system would store on different
// machines.
//
// Following Section 3.1 of the paper, a dataset is a set of individuals over
// a schema S = (P1..Pn) with finite integer domains. Attributes may derive
// from network structure (e.g. the number of coauthors of an individual).
package dataset

import (
	"fmt"
	"strings"
)

// Field describes a single attribute of the population schema: its name, its
// inclusive integer domain [Min, Max], and a human-readable description.
type Field struct {
	Name string
	Min  int64
	Max  int64
	Desc string
}

// Validate reports an error if the field is malformed.
func (f Field) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("dataset: field with empty name")
	}
	if f.Min > f.Max {
		return fmt.Errorf("dataset: field %q has empty domain [%d, %d]", f.Name, f.Min, f.Max)
	}
	return nil
}

// Contains reports whether v lies in the field's domain.
func (f Field) Contains(v int64) bool { return v >= f.Min && v <= f.Max }

// Width returns the number of values in the field's domain.
func (f Field) Width() int64 { return f.Max - f.Min + 1 }

// Schema is an ordered collection of uniquely named fields. The zero value is
// an empty schema; use NewSchema to build one.
type Schema struct {
	fields []Field
	index  map[string]int
}

// NewSchema builds a schema from the given fields. It returns an error when a
// field is malformed or a name repeats.
func NewSchema(fields ...Field) (*Schema, error) {
	s := &Schema{
		fields: make([]Field, len(fields)),
		index:  make(map[string]int, len(fields)),
	}
	copy(s.fields, fields)
	for i, f := range fields {
		if err := f.Validate(); err != nil {
			return nil, err
		}
		if _, dup := s.index[f.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate field %q", f.Name)
		}
		s.index[f.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for
// statically known schemas in tests and examples.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumFields returns the number of attributes in the schema.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns the i-th field. It panics if i is out of range.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of the schema's fields in order.
func (s *Schema) Fields() []Field {
	out := make([]Field, len(s.fields))
	copy(out, s.fields)
	return out
}

// Index returns the position of the named field and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Has reports whether the schema contains a field with the given name.
func (s *Schema) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// String renders the schema as "(name[min..max], ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s[%d..%d]", f.Name, f.Min, f.Max)
	}
	b.WriteByte(')')
	return b.String()
}
