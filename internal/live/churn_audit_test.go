package live

import (
	"math/rand"
	"testing"

	"repro/internal/audit"
	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/query"
)

// TestChurnInclusionBiasAudit is the correctness gate for incremental
// maintenance: after an interleaved insert/delete/migrate workload — with
// the staleness bound set low enough that repairs fire — the standing
// query's sample must be an unbiased simple random sample of the *final*
// membership. It reuses the chi-square inclusion audit of internal/audit and
// asserts the same alpha gate `strata audit` applies to batch sampling
// (fail below p = 1e-4).
func TestChurnInclusionBiasAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated-run bias audit")
	}
	const (
		n      = 240
		splits = 4
		bound  = 12
		runs   = 400
	)
	q := genderSSD(12, 9)

	// One fixed mutation script, generated once: every trial replays the
	// identical population history, so the final membership is identical and
	// only the sampling randomness (the standing query's seed) varies.
	scriptRNG := rand.New(rand.NewSource(2024))
	nextID := int64(100_000)
	alive := make([]int64, 0, n)
	for id := int64(0); id < int64(n); id++ {
		alive = append(alive, id)
	}
	var script []Mutation
	for step := 0; step < 900; step++ {
		switch r := scriptRNG.Intn(10); {
		case r < 3: // insert
			script = append(script, Mutation{Op: OpInsert, Tuple: tup(nextID, scriptRNG.Int63n(2), scriptRNG.Int63n(1001))})
			alive = append(alive, nextID)
			nextID++
		case r < 7: // delete (heavier than inserts, to force repairs)
			i := scriptRNG.Intn(len(alive))
			script = append(script, Mutation{Op: OpDelete, ID: alive[i]})
			alive[i] = alive[len(alive)-1]
			alive = alive[:len(alive)-1]
		default: // update, flipping gender half the time (stratum migration)
			i := scriptRNG.Intn(len(alive))
			script = append(script, Mutation{Op: OpUpdate, Tuple: tup(alive[i], scriptRNG.Int63n(2), scriptRNG.Int63n(1001))})
		}
	}

	runTrial := func(seed int64) (*Population, *query.Answer) {
		p := newTestPop(t, n, splits, Config{StalenessBound: bound})
		if _, err := p.Register("q", q, seed); err != nil {
			t.Fatal(err)
		}
		if res := p.Apply(script); len(res.Rejected) > 0 {
			t.Fatalf("script rejected: %+v", res.Rejected)
		}
		ans, _, _, _ := p.Snapshot("q")
		return p, ans
	}

	// Index the accumulator on the final membership of trial zero (every
	// trial ends at the same membership — the script is fixed).
	p0, _ := runTrial(1)
	if s := p0.Stats(); s.Repairs == 0 {
		t.Fatalf("workload triggered no repairs — the test is not exercising staleness (stats %+v)", s)
	} else if s.MaxStaleness > bound {
		t.Fatalf("staleness %d exceeded bound %d", s.MaxStaleness, bound)
	}
	finalSplits, release := p0.AcquireSplits()
	ref := make([]dataset.Split, len(finalSplits))
	for i, sp := range finalSplits {
		ref[i] = append(dataset.Split(nil), sp...)
	}
	release()

	acc, err := audit.NewBiasAccumulator(q, testSchema(), ref)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < runs; run++ {
		_, ans := runTrial(int64(run + 1))
		if err := acc.AddRun(ans, mapreduce.Metrics{}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := acc.Report()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Strata {
		t.Logf("stratum %s: members %d, required %d, chi2 %.1f, p %.4g", s.Stratum, s.Members, s.Required, s.Chi2, s.P)
	}
	if !rep.Passed(1e-4) {
		t.Fatalf("live sampling biased under churn: min p = %g (gate 1e-4)", rep.MinP())
	}
}
