package live

import (
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/sampling"
)

// Standing is one registered SSD query: per-stratum Algorithm L reservoirs
// plus the random-pairing bookkeeping that keeps them uniform under churn.
// All state is guarded by the owning Population's lock.
type Standing struct {
	Key   string
	Query *query.SSD
	Seed  int64

	preds  []predicate.Pred
	rng    *rand.Rand
	strata []*stratumState
	// version counts mutations that touched any stratum of this query; the
	// serve layer uses it as the push trigger and the snapshot cache epoch.
	version int64
}

// stratumState is one stratum's incremental sampler.
type stratumState struct {
	res     *sampling.Reservoir[dataset.Tuple]
	members int // live |σ_k(R)|
	// Random-pairing counters: uncompensated deletions that were in the
	// sample (d1 — these are holes) and that were not (d2). The reservoir
	// invariant is res.Seen() − members == d1 + d2.
	d1, d2  int
	version int64
	repairs int64
}

// newStanding compiles the query and allocates empty reservoirs. The caller
// (Population.Register) fills them with the registration scan.
func newStanding(key string, q *query.SSD, seed int64, schema *dataset.Schema) (*Standing, error) {
	preds, err := q.Compile(schema)
	if err != nil {
		return nil, err
	}
	st := &Standing{
		Key: key, Query: q, Seed: seed,
		preds:  preds,
		rng:    rand.New(rand.NewSource(seed)),
		strata: make([]*stratumState, len(q.Strata)),
	}
	for k, sq := range q.Strata {
		st.strata[k] = &stratumState{res: sampling.NewReservoir[dataset.Tuple](sq.Freq, st.rng)}
	}
	return st, nil
}

// insert offers a newly inserted member. When uncompensated deletions exist,
// the insert pairs against one of them (random pairing: into the sample with
// probability d1/(d1+d2), bypassing the stream count); otherwise it takes a
// standard Algorithm L step — O(1) expected, one counter decrement on the
// skip path.
func (st *Standing) insert(t dataset.Tuple) {
	k := query.MatchStratum(st.preds, &t)
	if k < 0 {
		return
	}
	s := st.strata[k]
	s.members++
	if d := s.d1 + s.d2; d > 0 {
		if st.rng.Intn(d) < s.d1 {
			s.res.Readmit(t)
			s.d1--
		} else {
			s.d2--
		}
	} else {
		s.res.Add(t)
	}
	st.bump(s)
}

// remove handles the deletion of a member: forget it from the reservoir when
// sampled, count the deletion as uncompensated either way, and repair the
// stratum when staleness reaches the population's bound.
func (st *Standing) remove(p *Population, old dataset.Tuple) {
	k := query.MatchStratum(st.preds, &old)
	if k < 0 {
		return
	}
	s := st.strata[k]
	s.members--
	if s.res.Forget(func(t dataset.Tuple) bool { return t.ID == old.ID }) {
		s.d1++
	} else {
		s.d2++
	}
	st.bump(s)
	if staleness := int64(s.d1 + s.d2); staleness > p.maxStaleness {
		p.maxStaleness = staleness
	}
	if s.d1+s.d2 >= p.bound {
		st.repair(p, k)
	}
}

// update handles an attribute change. Same stratum: refresh the payload in
// place (the member's identity, and hence the sample's distribution, is
// unchanged). Different stratum: delete from the old, insert into the new —
// stratum migration.
func (st *Standing) update(p *Population, old, new dataset.Tuple) {
	kOld := query.MatchStratum(st.preds, &old)
	kNew := query.MatchStratum(st.preds, &new)
	if kOld == kNew {
		if kOld < 0 {
			return
		}
		s := st.strata[kOld]
		s.res.Replace(func(t dataset.Tuple) bool { return t.ID == new.ID }, new)
		st.bump(s)
		return
	}
	if kOld >= 0 {
		st.remove(p, old)
	}
	if kNew >= 0 {
		st.insert(new)
	}
}

// bump advances the stratum's and the query's versions.
func (st *Standing) bump(s *stratumState) {
	s.version++
	st.version++
}

// repair rebuilds stratum k's reservoir from the resident splits: one scan
// of the population, restricted to this query's predicate, instead of a full
// MapReduce pass. Counters reset — the rebuilt reservoir is exact for the
// current membership.
func (st *Standing) repair(p *Population, k int) {
	start := time.Now()
	s := st.strata[k]
	var members []dataset.Tuple
	scanned := int64(0)
	for si := range p.splits {
		split := p.splits[si]
		scanned += int64(len(split))
		for i := range split {
			if st.preds[k](&split[i]) {
				members = append(members, split[i])
			}
		}
	}
	fresh := sampling.NewReservoir[dataset.Tuple](st.Query.Strata[k].Freq, st.rng)
	fresh.AddSlice(members)
	s.res = fresh
	s.members = len(members)
	s.d1, s.d2 = 0, 0
	s.repairs++
	st.bump(s)
	p.repairs++
	p.repairScanned += scanned
	p.repairNanos.Observe(time.Since(start).Nanoseconds())
}
