package live

import (
	"fmt"
	"io"

	"repro/internal/mapreduce"
)

// Stats is a snapshot of the live subsystem's counters, rendered into the
// serve daemon's /v1/stats ("live" section) and /metrics (strata_live_*).
type Stats struct {
	Population int   `json:"population"`
	Queries    int   `json:"standing_queries"`
	Seq        int64 `json:"mutation_seq"`
	Inserts    int64 `json:"inserts"`
	Deletes    int64 `json:"deletes"`
	Updates    int64 `json:"updates"`
	Rejected   int64 `json:"rejected"`
	// Repairs counts stratum reservoir rebuilds; RepairScanned the tuples
	// examined doing them — the cost the staleness bound trades against.
	Repairs       int64 `json:"repairs"`
	RepairScanned int64 `json:"repair_scanned"`
	// MaxStaleness is the highest uncompensated-deletion count any stratum
	// reached (never above the bound; repair fires when it is hit).
	MaxStaleness   int64 `json:"max_staleness"`
	StalenessBound int   `json:"staleness_bound"`
	// CurStaleness is the current worst staleness across all strata.
	CurStaleness int64 `json:"cur_staleness"`
	// NsPerMutation is mean maintenance time per applied mutation across all
	// registered queries — the O(sample) incremental cost.
	NsPerMutation float64 `json:"ns_per_mutation,omitempty"`
	// RepairP99Usec summarizes repair cost.
	RepairP99Usec int64 `json:"repair_p99_us,omitempty"`
}

// Stats snapshots the counters.
func (p *Population) Stats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	s := Stats{
		Population:     len(p.loc),
		Queries:        len(p.queries),
		Seq:            p.seq.Load(),
		Inserts:        p.inserts,
		Deletes:        p.deletes,
		Updates:        p.updates,
		Rejected:       p.rejected,
		Repairs:        p.repairs,
		RepairScanned:  p.repairScanned,
		MaxStaleness:   p.maxStaleness,
		StalenessBound: p.bound,
	}
	for _, st := range p.queries {
		for _, sr := range st.strata {
			if d := int64(sr.d1 + sr.d2); d > s.CurStaleness {
				s.CurStaleness = d
			}
		}
	}
	if p.maintainMuts > 0 {
		s.NsPerMutation = float64(p.maintainNanos.Sum()) / float64(p.maintainMuts)
	}
	if p.repairNanos.Count() > 0 {
		s.RepairP99Usec = p.repairNanos.Quantile(0.99) / 1000
	}
	return s
}

// WritePrometheus renders the live counters in the Prometheus text format
// under the strata_live_* namespace.
func (p *Population) WritePrometheus(w io.Writer) error {
	s := p.Stats()
	p.mu.RLock()
	maintain := p.maintainNanos
	repair := p.repairNanos
	p.mu.RUnlock()

	if _, err := fmt.Fprintf(w, "# HELP strata_live_mutations_total Applied mutations by operation.\n# TYPE strata_live_mutations_total counter\n"); err != nil {
		return err
	}
	for _, c := range []struct {
		op string
		v  int64
	}{{"insert", s.Inserts}, {"delete", s.Deletes}, {"update", s.Updates}} {
		if _, err := fmt.Fprintf(w, "strata_live_mutations_total{op=%q} %d\n", c.op, c.v); err != nil {
			return err
		}
	}
	counters := []struct {
		name, help string
		v          int64
	}{
		{"strata_live_rejected_total", "Mutations rejected (unknown, duplicate or invalid member).", s.Rejected},
		{"strata_live_repairs_total", "Stratum reservoir repairs triggered by the staleness bound.", s.Repairs},
		{"strata_live_repair_scanned_total", "Tuples scanned by reservoir repairs.", s.RepairScanned},
	}
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v); err != nil {
			return err
		}
	}
	gauges := []struct {
		name, help string
		v          int64
	}{
		{"strata_live_population", "Current population size.", int64(s.Population)},
		{"strata_live_standing_queries", "Registered standing queries.", int64(s.Queries)},
		{"strata_live_mutation_seq", "Total applied mutations (the mutation epoch).", s.Seq},
		{"strata_live_staleness", "Current worst uncompensated-deletion count across strata.", s.CurStaleness},
		{"strata_live_staleness_max", "Highest staleness any stratum reached.", s.MaxStaleness},
		{"strata_live_staleness_bound", "Configured repair trigger.", int64(s.StalenessBound)},
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.v); err != nil {
			return err
		}
	}
	if err := writeHistogram(w, "strata_live_maintain_nanos", "Mutation-batch maintenance time across registered queries (ns).", maintain); err != nil {
		return err
	}
	return writeHistogram(w, "strata_live_repair_nanos", "Per-repair reservoir rebuild time (ns).", repair)
}

// writeHistogram renders one histogram in the Prometheus text format
// (cumulative buckets); the same shape internal/serve uses.
func writeHistogram(w io.Writer, name, help string, h mapreduce.Histogram) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	cum := int64(0)
	for _, b := range h.Buckets() {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.Le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum(), name, h.Count())
	return err
}
