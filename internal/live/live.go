package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/query"
)

// Op is a mutation-log operation.
type Op uint8

const (
	// OpInsert adds a new member (Mutation.Tuple, with a fresh ID).
	OpInsert Op = iota
	// OpDelete removes the member with Mutation.ID.
	OpDelete
	// OpUpdate replaces the attributes of the member with Mutation.Tuple.ID;
	// when the new attributes move the member to a different stratum of a
	// registered query, the update is handled as delete + insert.
	OpUpdate
)

// String names the operation ("insert", "delete", "update").
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// ParseOp maps an operation name back to the Op, for wire decoding.
func ParseOp(name string) (Op, error) {
	for _, o := range []Op{OpInsert, OpDelete, OpUpdate} {
		if o.String() == name {
			return o, nil
		}
	}
	return 0, fmt.Errorf("live: unknown mutation op %q (want insert, delete or update)", name)
}

// Mutation is one entry of the mutation log.
type Mutation struct {
	Op    Op
	Tuple dataset.Tuple // Insert/Update: the full new tuple
	ID    int64         // Delete: the member to remove
}

// Rejection reports one mutation of a batch that could not be applied
// (unknown ID, duplicate ID, schema violation). The rest of the batch is
// unaffected.
type Rejection struct {
	Index int    `json:"index"`
	Err   string `json:"error"`
}

// Applied summarizes one Apply batch.
type Applied struct {
	Applied  int         `json:"applied"`
	Inserts  int         `json:"inserts"`
	Deletes  int         `json:"deletes"`
	Updates  int         `json:"updates"`
	Repairs  int         `json:"repairs,omitempty"`
	Rejected []Rejection `json:"rejected,omitempty"`
	// Seq is the population's total applied-mutation count after this batch —
	// the mutation epoch ad-hoc query caching keys on.
	Seq int64 `json:"seq"`
}

// Config configures a live population.
type Config struct {
	// StalenessBound is the maximum uncompensated deletions (d1+d2) any
	// stratum reservoir tolerates before it is repaired from the resident
	// splits. Defaults to 64. Lower bounds repair more often (higher scan
	// cost) but keep the sample deficit smaller.
	StalenessBound int
}

// tupleLoc addresses one member inside the resident splits.
type tupleLoc struct {
	split int
	idx   int
}

// Population is a mutable population with registered standing SSD queries.
// It owns the resident splits handed to it at construction: mutations edit
// them in place, so engine passes run over current data, and stratum repairs
// rescan them. All methods are safe for concurrent use; mutations serialize
// behind a write lock while snapshots and pass execution share a read lock.
type Population struct {
	mu      sync.RWMutex
	schema  *dataset.Schema
	splits  []dataset.Split
	loc     map[int64]tupleLoc
	next    int // round-robin insert target
	bound   int
	queries map[string]*Standing

	seq atomic.Int64 // total applied mutations, the mutation epoch

	// Counters (under mu).
	inserts, deletes, updates, rejected int64
	repairs, repairScanned              int64
	maxStaleness                        int64
	maintainNanos                       mapreduce.Histogram // per Apply batch
	maintainMuts                        int64
	repairNanos                         mapreduce.Histogram
}

// NewPopulation takes ownership of the resident splits (typically the ones
// the serve daemon partitioned at startup) and returns a mutable population
// over them. The splits' union must have unique IDs.
func NewPopulation(schema *dataset.Schema, splits []dataset.Split, cfg Config) (*Population, error) {
	if len(splits) == 0 {
		return nil, fmt.Errorf("live: population needs at least one split")
	}
	if cfg.StalenessBound <= 0 {
		cfg.StalenessBound = 64
	}
	p := &Population{
		schema:  schema,
		splits:  splits,
		loc:     make(map[int64]tupleLoc),
		bound:   cfg.StalenessBound,
		queries: make(map[string]*Standing),
	}
	for si, split := range splits {
		for i := range split {
			id := split[i].ID
			if _, dup := p.loc[id]; dup {
				return nil, fmt.Errorf("live: duplicate tuple id %d across splits", id)
			}
			p.loc[id] = tupleLoc{split: si, idx: i}
		}
	}
	return p, nil
}

// Len returns the current population size.
func (p *Population) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.loc)
}

// Seq returns the mutation epoch: the total number of applied mutations.
func (p *Population) Seq() int64 { return p.seq.Load() }

// StalenessBound returns the configured repair trigger.
func (p *Population) StalenessBound() int { return p.bound }

// AcquireSplits returns the resident splits for an engine pass plus a
// release function. The splits are read-locked until released: mutations
// wait, which is what keeps a pass's view consistent. Standing queries never
// need this — their answers come from the warm reservoirs.
func (p *Population) AcquireSplits() ([]dataset.Split, func()) {
	p.mu.RLock()
	return p.splits, p.mu.RUnlock
}

// Contains reports whether a member with the ID exists.
func (p *Population) Contains(id int64) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.loc[id]
	return ok
}

// Apply ingests one mutation-log batch. Invalid mutations are rejected
// individually (reported in the result); valid ones apply in order, each
// updating the resident splits and every registered standing query. Repairs
// triggered by the staleness bound run inline and are counted in the result.
func (p *Population) Apply(muts []Mutation) Applied {
	start := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	repairsBefore := p.repairs
	var res Applied
	for i := range muts {
		if err := p.applyOne(&muts[i]); err != nil {
			p.rejected++
			res.Rejected = append(res.Rejected, Rejection{Index: i, Err: err.Error()})
			continue
		}
		res.Applied++
		switch muts[i].Op {
		case OpInsert:
			res.Inserts++
		case OpDelete:
			res.Deletes++
		case OpUpdate:
			res.Updates++
		}
	}
	p.inserts += int64(res.Inserts)
	p.deletes += int64(res.Deletes)
	p.updates += int64(res.Updates)
	res.Repairs = int(p.repairs - repairsBefore)
	res.Seq = p.seq.Add(int64(res.Applied))
	p.maintainNanos.Observe(time.Since(start).Nanoseconds())
	p.maintainMuts += int64(res.Applied)
	return res
}

// applyOne applies a single mutation under the write lock.
func (p *Population) applyOne(m *Mutation) error {
	switch m.Op {
	case OpInsert:
		t := m.Tuple
		if err := t.ValidFor(p.schema); err != nil {
			return err
		}
		if _, dup := p.loc[t.ID]; dup {
			return fmt.Errorf("live: insert of duplicate id %d", t.ID)
		}
		si := p.next
		p.next = (p.next + 1) % len(p.splits)
		p.splits[si] = append(p.splits[si], t)
		p.loc[t.ID] = tupleLoc{split: si, idx: len(p.splits[si]) - 1}
		for _, st := range p.queries {
			st.insert(t)
		}
	case OpDelete:
		l, ok := p.loc[m.ID]
		if !ok {
			return fmt.Errorf("live: delete of unknown id %d", m.ID)
		}
		old := p.splits[l.split][l.idx]
		p.removeAt(l)
		for _, st := range p.queries {
			st.remove(p, old)
		}
	case OpUpdate:
		t := m.Tuple
		if err := t.ValidFor(p.schema); err != nil {
			return err
		}
		l, ok := p.loc[t.ID]
		if !ok {
			return fmt.Errorf("live: update of unknown id %d", t.ID)
		}
		old := p.splits[l.split][l.idx]
		p.splits[l.split][l.idx] = t
		for _, st := range p.queries {
			st.update(p, old, t)
		}
	default:
		return fmt.Errorf("live: unknown op %v", m.Op)
	}
	return nil
}

// removeAt swap-removes the member at l from its split, fixing the moved
// member's location index.
func (p *Population) removeAt(l tupleLoc) {
	split := p.splits[l.split]
	last := len(split) - 1
	delete(p.loc, split[l.idx].ID)
	if l.idx != last {
		split[l.idx] = split[last]
		p.loc[split[l.idx].ID] = l
	}
	split[last] = dataset.Tuple{}
	p.splits[l.split] = split[:last]
}

// Rebalance re-cuts the resident population into k near-equal contiguous
// splits and returns how many members changed split. Round-robin inserts and
// swap-removes let splits drift unbalanced over a long mutation history; a
// balanced re-cut restores even map-task sizing for engine passes. The relative
// order of members is preserved (concatenation order of the old splits), the
// loc map is rebuilt, and the round-robin insert cursor resets. Callers should
// bump the daemon epoch afterwards: the re-cut changes split boundaries, which
// changes per-split reservoir draws, so cached answers must not survive it.
func (p *Population) Rebalance(k int) int {
	if k < 1 {
		k = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	total := len(p.loc)
	flat := make(dataset.Split, 0, total)
	for _, s := range p.splits {
		flat = append(flat, s...)
	}
	if k > total && total > 0 {
		k = total
	}
	splits := make([]dataset.Split, k)
	base, rem := 0, 0
	if total > 0 {
		base, rem = total/k, total%k
	}
	moved := 0
	off := 0
	for si := range splits {
		size := base
		if si < rem {
			size++
		}
		splits[si] = flat[off : off+size : off+size]
		for i := range splits[si] {
			l := tupleLoc{split: si, idx: i}
			if p.loc[splits[si][i].ID] != l {
				moved++
			}
			p.loc[splits[si][i].ID] = l
		}
		off += size
	}
	p.splits = splits
	p.next = 0
	return moved
}

// Register compiles the query and builds its per-stratum reservoirs with one
// scan of the resident splits (the only O(population) step of a standing
// query's lifetime outside repairs). A key already registered is returned
// as-is when the seed matches, and rejected otherwise — subscribers to the
// same canonical query share one state.
func (p *Population) Register(key string, q *query.SSD, seed int64) (*Standing, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.queries[key]; ok {
		if st.Seed != seed {
			return nil, fmt.Errorf("live: query %q already registered with seed %d", key, st.Seed)
		}
		return st, nil
	}
	st, err := newStanding(key, q, seed, p.schema)
	if err != nil {
		return nil, err
	}
	for si := range p.splits {
		split := p.splits[si]
		for i := range split {
			if k := query.MatchStratum(st.preds, &split[i]); k >= 0 {
				s := st.strata[k]
				s.members++
				s.res.Add(split[i])
			}
		}
	}
	p.queries[key] = st
	return st, nil
}

// Unregister drops a standing query. It reports whether the key existed.
func (p *Population) Unregister(key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.queries[key]
	delete(p.queries, key)
	return ok
}

// QueryVersion returns the standing query's version — bumped once per
// mutation that touched any of its strata — or 0 for an unknown key.
func (p *Population) QueryVersion(key string) int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if st, ok := p.queries[key]; ok {
		return st.version
	}
	return 0
}

// StratumMeta describes one stratum of a snapshot.
type StratumMeta struct {
	// Members is the live |σ_k(R)|.
	Members int `json:"members"`
	// SampleSize is the current reservoir size — min(f_k, members) minus any
	// holes awaiting compensation or repair.
	SampleSize int `json:"sample_size"`
	// Staleness is d1+d2, the uncompensated deletions.
	Staleness int `json:"staleness"`
	// Version counts mutations that touched this stratum (its cache epoch).
	Version int64 `json:"version"`
	// Repairs counts rebuilds of this stratum's reservoir.
	Repairs int64 `json:"repairs"`
}

// Snapshot returns the standing query's warm answer — a copy, never aliased
// by later mutations — with per-stratum metadata and the query version.
func (p *Population) Snapshot(key string) (*query.Answer, []StratumMeta, int64, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st, ok := p.queries[key]
	if !ok {
		return nil, nil, 0, false
	}
	ans := query.NewAnswer(len(st.strata))
	metas := make([]StratumMeta, len(st.strata))
	for k, s := range st.strata {
		ans.Strata[k] = append([]dataset.Tuple(nil), s.res.Sample()...)
		metas[k] = StratumMeta{
			Members:    s.members,
			SampleSize: len(ans.Strata[k]),
			Staleness:  s.d1 + s.d2,
			Version:    s.version,
			Repairs:    s.repairs,
		}
	}
	return ans, metas, st.version, true
}
