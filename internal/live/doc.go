// Package live maintains stratified samples incrementally over a mutating
// population — the standing-query side of the paper's SSD semantics. The
// batch engine (internal/stratified) recomputes an answer with a full
// MapReduce pass; this package instead ingests a mutation log (insert,
// delete, update-attributes) and keeps, per registered SSD query, one
// Algorithm L reservoir per stratum warm at all times, so a standing query's
// answer is a snapshot read instead of a pass.
//
// Cost model. An insert touches each registered query once: one stratum
// match plus one reservoir step, and the reservoir step is O(1) expected —
// Algorithm L's geometric skip counter (sampling.Reservoir) rejects most
// arrivals with a single decrement. Total maintenance is O(sample), never
// O(population). A deletion removes the member from its stratum's reservoir
// when sampled (sampling.Reservoir.Forget) and otherwise just counts; an
// attribute update that moves a member across strata is a delete from the
// old stratum plus an insert into the new one (stratum migration).
//
// Uniformity under churn uses random pairing (Gemulla, Lehner and Haas,
// VLDB 2006): each deletion is left "uncompensated" (d1 when the member was
// sampled, d2 when not) and the next insertion pairs against it — entering
// the sample with probability d1/(d1+d2) via Reservoir.Readmit instead of
// taking a fresh Algorithm L step. The invariant Seen − members = d1 + d2
// means the reservoir's stream count equals the membership exactly when all
// deletions are compensated, so the standard path always accepts with the
// correct k/(n+1) law. The sample is a simple random sample of the current
// stratum membership after every mutation.
//
// Staleness and repair. Uncompensated deletions (d1+d2) are the stratum's
// staleness: d1 of them are holes — the sample runs below min(f_k, members)
// until inserts arrive to pair against them. When a stratum's staleness
// reaches Config.StalenessBound, the stratum is repaired: its reservoir is
// rebuilt from the resident splits (an O(population) scan of just that
// query), not by rerunning a MapReduce pass, and the counters reset. The
// bound therefore caps both the sample deficit and the stream-count drift;
// repair cost and frequency are exported (strata_live_repairs_total,
// strata_live_repair_scanned_total, repair-nanos histogram) so the
// bound-vs-cost trade-off is measurable.
//
// internal/serve exposes this machinery over HTTP: POST /v1/mutate feeds the
// log, POST /v1/subscribe registers a standing query with a push trigger,
// and /v1/sample answers registered queries from the warm reservoirs without
// an engine pass. See DESIGN.md §14. Contrast with internal/stream, which
// solves a different streaming problem (union SRS across distributed sites);
// its doc comment states the division of labor.
package live
