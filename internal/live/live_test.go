package live

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/predicate"
	"repro/internal/query"
)

func testSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Field{Name: "gender", Min: 0, Max: 1},
		dataset.Field{Name: "income", Min: 0, Max: 1000},
	)
}

// tup builds a member; gender 1 for even ids keeps strata easy to reason
// about in scripts that choose ids deliberately.
func tup(id int64, gender, income int64) dataset.Tuple {
	return dataset.Tuple{ID: id, Attrs: []int64{gender, income}}
}

func genderSSD(fMen, fWomen int) *query.SSD {
	return query.NewSSD("gender",
		query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: fMen},
		query.Stratum{Cond: predicate.MustParse("gender = 0"), Freq: fWomen},
	)
}

// newTestPop builds a live population of n members (ids 0..n-1, alternating
// gender) over k splits.
func newTestPop(t *testing.T, n, splits int, cfg Config) *Population {
	t.Helper()
	r := dataset.NewRelation(testSchema())
	for id := int64(0); id < int64(n); id++ {
		r.MustAdd(tup(id, (id+1)%2, id%1001))
	}
	sp, err := dataset.Partition(r, splits, dataset.RoundRobin, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPopulation(r.Schema(), sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestApplyMaintainsMembershipAndSamples(t *testing.T) {
	p := newTestPop(t, 100, 4, Config{})
	st, err := p.Register("g", genderSSD(5, 7), 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = st
	ans, metas, _, ok := p.Snapshot("g")
	if !ok {
		t.Fatal("registered query not found")
	}
	if metas[0].Members != 50 || metas[1].Members != 50 {
		t.Fatalf("initial members %+v, want 50/50", metas)
	}
	if len(ans.Strata[0]) != 5 || len(ans.Strata[1]) != 7 {
		t.Fatalf("initial samples %d/%d, want 5/7", len(ans.Strata[0]), len(ans.Strata[1]))
	}

	res := p.Apply([]Mutation{
		{Op: OpInsert, Tuple: tup(1000, 1, 3)},     // new man
		{Op: OpDelete, ID: 0},                      // delete a man
		{Op: OpUpdate, Tuple: tup(2, 0, 9)},        // migrate man -> woman
		{Op: OpUpdate, Tuple: tup(4, 1, 500)},      // same-stratum attribute change
		{Op: OpInsert, Tuple: tup(1001, 0, 1)},     // new woman
		{Op: OpDelete, ID: 999999},                 // unknown: rejected
		{Op: OpInsert, Tuple: tup(1000, 1, 3)},     // duplicate: rejected
		{Op: OpInsert, Tuple: tup(1002, 5, 99999)}, // domain violation: rejected
	})
	if res.Applied != 5 || res.Inserts != 2 || res.Deletes != 1 || res.Updates != 2 {
		t.Fatalf("applied %+v", res)
	}
	if len(res.Rejected) != 3 {
		t.Fatalf("rejections %+v, want 3", res.Rejected)
	}
	if res.Seq != 5 || p.Seq() != 5 {
		t.Fatalf("seq %d/%d, want 5", res.Seq, p.Seq())
	}
	if p.Len() != 101 {
		t.Fatalf("population %d, want 101", p.Len())
	}
	_, metas, _, _ = p.Snapshot("g")
	// Men: 50 +1 (insert) -1 (delete) -1 (migration out) = 49.
	// Women: 50 +1 (insert) +1 (migration in) = 52.
	if metas[0].Members != 49 || metas[1].Members != 52 {
		t.Fatalf("members after churn %+v, want 49/52", metas)
	}
	if p.Contains(0) {
		t.Fatal("deleted member still present")
	}
}

// TestInvariantSeenMinusMembers checks the random-pairing bookkeeping: for
// every stratum, reservoir stream count minus live membership equals the
// uncompensated deletions, across a random interleaved workload.
func TestInvariantSeenMinusMembers(t *testing.T) {
	p := newTestPop(t, 400, 4, Config{StalenessBound: 1 << 30}) // never repair
	if _, err := p.Register("g", genderSSD(10, 10), 3); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	nextID := int64(10_000)
	alive := make([]int64, 0, 400)
	for id := int64(0); id < 400; id++ {
		alive = append(alive, id)
	}
	for step := 0; step < 2000; step++ {
		var m Mutation
		switch r := rng.Intn(10); {
		case r < 4: // insert
			m = Mutation{Op: OpInsert, Tuple: tup(nextID, rng.Int63n(2), rng.Int63n(1001))}
			alive = append(alive, nextID)
			nextID++
		case r < 8: // delete
			i := rng.Intn(len(alive))
			m = Mutation{Op: OpDelete, ID: alive[i]}
			alive[i] = alive[len(alive)-1]
			alive = alive[:len(alive)-1]
		default: // update (possibly migrating)
			i := rng.Intn(len(alive))
			m = Mutation{Op: OpUpdate, Tuple: tup(alive[i], rng.Int63n(2), rng.Int63n(1001))}
		}
		if res := p.Apply([]Mutation{m}); len(res.Rejected) > 0 {
			t.Fatalf("step %d rejected: %+v", step, res.Rejected)
		}
		st := p.queries["g"]
		for k, s := range st.strata {
			if got, want := s.res.Seen()-int64(s.members), int64(s.d1+s.d2); got != want {
				t.Fatalf("step %d stratum %d: seen-members = %d, d1+d2 = %d", step, k, got, want)
			}
			if len(s.res.Sample()) > s.members {
				t.Fatalf("step %d stratum %d: sample %d exceeds members %d", step, k, len(s.res.Sample()), s.members)
			}
		}
	}
}

func TestStalenessBoundTriggersRepair(t *testing.T) {
	const bound = 8
	p := newTestPop(t, 300, 4, Config{StalenessBound: bound})
	if _, err := p.Register("g", genderSSD(20, 20), 1); err != nil {
		t.Fatal(err)
	}
	// Delete men only; every deletion is uncompensated (no inserts), so the
	// men stratum must repair every `bound` deletions.
	var muts []Mutation
	for id := int64(0); id < 200; id += 2 {
		muts = append(muts, Mutation{Op: OpDelete, ID: id})
	}
	res := p.Apply(muts)
	if res.Applied != 100 {
		t.Fatalf("applied %d, want 100", res.Applied)
	}
	s := p.Stats()
	if s.Repairs != 100/bound {
		t.Fatalf("repairs %d, want %d", s.Repairs, 100/bound)
	}
	if s.MaxStaleness > bound {
		t.Fatalf("staleness %d exceeded bound %d", s.MaxStaleness, bound)
	}
	if s.RepairScanned == 0 {
		t.Fatal("repair scanned no tuples")
	}
	ans, metas, _, _ := p.Snapshot("g")
	// 50 men survive (ids 200..298 even); reservoir refills to f=20 on
	// repair, and staleness since the last repair is at most bound-1 holes.
	if metas[0].Members != 50 {
		t.Fatalf("men members %d, want 50", metas[0].Members)
	}
	if len(ans.Strata[0]) < 20-(bound-1) {
		t.Fatalf("men sample %d fell below the bound's deficit floor", len(ans.Strata[0]))
	}
	for _, mt := range ans.Strata[0] {
		if !p.Contains(mt.ID) {
			t.Fatalf("sample holds deleted member %d", mt.ID)
		}
	}
}

func TestSnapshotDetachedFromMutations(t *testing.T) {
	p := newTestPop(t, 60, 2, Config{})
	if _, err := p.Register("g", genderSSD(30, 0), 1); err != nil {
		t.Fatal(err)
	}
	ans, _, ver, _ := p.Snapshot("g")
	before := make([]int64, len(ans.Strata[0]))
	for i, mt := range ans.Strata[0] {
		before[i] = mt.ID
	}
	var muts []Mutation
	for id := int64(0); id < 60; id += 2 {
		muts = append(muts, Mutation{Op: OpDelete, ID: id})
	}
	p.Apply(muts)
	for i, mt := range ans.Strata[0] {
		if mt.ID != before[i] {
			t.Fatal("snapshot aliased by later mutations")
		}
	}
	if _, _, ver2, _ := p.Snapshot("g"); ver2 <= ver {
		t.Fatalf("version did not advance: %d -> %d", ver, ver2)
	}
}

func TestRegisterSharingAndSeedMismatch(t *testing.T) {
	p := newTestPop(t, 50, 2, Config{})
	a, err := p.Register("k", genderSSD(3, 3), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Register("k", genderSSD(3, 3), 7)
	if err != nil || a != b {
		t.Fatalf("re-register did not share state: %v", err)
	}
	if _, err := p.Register("k", genderSSD(3, 3), 8); err == nil {
		t.Fatal("seed mismatch accepted")
	}
	if !p.Unregister("k") || p.Unregister("k") {
		t.Fatal("unregister bookkeeping wrong")
	}
	if _, err := p.Register("bad", query.NewSSD("bad",
		query.Stratum{Cond: predicate.MustParse("zzz = 1"), Freq: 1}), 1); err == nil ||
		!strings.Contains(err.Error(), "zzz") {
		t.Fatalf("uncompilable query accepted: %v", err)
	}
}

// TestAcquireSplitsConsistency checks a pass's view: the union of the
// acquired splits is exactly the live membership.
func TestAcquireSplitsConsistency(t *testing.T) {
	p := newTestPop(t, 80, 3, Config{})
	p.Apply([]Mutation{
		{Op: OpDelete, ID: 10}, {Op: OpDelete, ID: 11},
		{Op: OpInsert, Tuple: tup(500, 1, 1)},
	})
	splits, release := p.AcquireSplits()
	defer release()
	seen := map[int64]bool{}
	total := 0
	for _, sp := range splits {
		total += len(sp)
		for i := range sp {
			if seen[sp[i].ID] {
				t.Fatalf("duplicate id %d across splits", sp[i].ID)
			}
			seen[sp[i].ID] = true
		}
	}
	if total != 79 || !seen[500] || seen[10] || seen[11] {
		t.Fatalf("split union wrong: total %d, 500=%v 10=%v", total, seen[500], seen[10])
	}
}
