package live

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/mapreduce"
	"repro/internal/query"
	"repro/internal/stratified"
)

// benchSetup builds the paper's author population at pop=10⁵ with one
// registered standing query — the configuration the acceptance criterion
// names (BENCH_PR9.json compares these numbers).
func benchSetup(b *testing.B, n int) (*Population, *query.SSD, *dataset.Schema, []dataset.Split) {
	b.Helper()
	rel := gen.Population(n, 1)
	splits, err := dataset.Partition(rel, 8, dataset.RoundRobin, nil)
	if err != nil {
		b.Fatal(err)
	}
	q, err := query.ParseSSD("Q", "nop >= 100 : 50 ; nop < 100 : 50")
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewPopulation(rel.Schema(), splits, Config{StalenessBound: 64})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Register("q", q, 1); err != nil {
		b.Fatal(err)
	}
	return p, q, rel.Schema(), splits
}

// BenchmarkLiveMaintenance measures per-mutation incremental maintenance —
// the O(sample) cost an insert/delete/update pays across registered queries.
// Compare against BenchmarkLiveRecompute: the same freshness bought by
// rerunning the engine pass per query.
func BenchmarkLiveMaintenance(b *testing.B) {
	const n = 100_000
	p, _, schema, _ := benchSetup(b, n)
	rng := rand.New(rand.NewSource(7))
	nextID := int64(10_000_000)
	attrs := func() []int64 {
		a := make([]int64, schema.NumFields())
		for i := 0; i < schema.NumFields(); i++ {
			f := schema.Field(i)
			a[i] = f.Min + rng.Int63n(f.Width())
		}
		return a
	}
	const batch = 256
	muts := make([]Mutation, 0, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		muts = muts[:0]
		for len(muts) < batch && done+len(muts) < b.N {
			switch (done + len(muts)) % 3 {
			case 0: // insert a newcomer
				muts = append(muts, Mutation{Op: OpInsert, Tuple: dataset.Tuple{ID: nextID, Attrs: attrs()}})
				nextID++
			case 1: // migrate-or-refresh an original member
				id := rng.Int63n(n)
				muts = append(muts, Mutation{Op: OpUpdate, Tuple: dataset.Tuple{ID: id, Attrs: attrs()}})
			default: // delete the newcomer again (population size stays ~n)
				muts = append(muts, Mutation{Op: OpDelete, ID: nextID - 1})
			}
		}
		res := p.Apply(muts)
		if len(res.Rejected) > 0 {
			b.Fatalf("rejected: %+v", res.Rejected)
		}
		done += res.Applied
	}
	b.StopTimer()
	s := p.Stats()
	b.ReportMetric(s.NsPerMutation, "maintain-ns/mut")
	b.ReportMetric(float64(s.Repairs), "repairs")
}

// BenchmarkLiveInsert isolates the insert path: pure Algorithm L steps, no
// deletions, so no repairs amortize in — this is the O(sample) per-mutation
// cost the tentpole claims (most inserts cost one skip-counter decrement).
func BenchmarkLiveInsert(b *testing.B) {
	const n = 100_000
	p, _, schema, _ := benchSetup(b, n)
	rng := rand.New(rand.NewSource(7))
	nextID := int64(10_000_000)
	const batch = 256
	muts := make([]Mutation, 0, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		muts = muts[:0]
		for len(muts) < batch && done+len(muts) < b.N {
			a := make([]int64, schema.NumFields())
			for i := 0; i < schema.NumFields(); i++ {
				f := schema.Field(i)
				a[i] = f.Min + rng.Int63n(f.Width())
			}
			muts = append(muts, Mutation{Op: OpInsert, Tuple: dataset.Tuple{ID: nextID, Attrs: a}})
			nextID++
		}
		res := p.Apply(muts)
		if len(res.Rejected) > 0 {
			b.Fatalf("rejected: %+v", res.Rejected)
		}
		done += res.Applied
	}
}

// BenchmarkLiveRecompute is the baseline the incremental path replaces: a
// full MR-SQE pass per query over the same population. The acceptance gate
// is recompute ≥ 5× maintenance per unit of freshness.
func BenchmarkLiveRecompute(b *testing.B) {
	const n = 100_000
	_, q, schema, splits := benchSetup(b, n)
	c := mapreduce.NewCluster(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := stratified.RunSQE(c, q, schema, splits, stratified.Options{Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveSnapshot measures a standing query's answer retrieval — the
// read path a subscriber's push or a warm /v1/sample hit takes.
func BenchmarkLiveSnapshot(b *testing.B) {
	p, _, _, _ := benchSetup(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := p.Snapshot("q"); !ok {
			b.Fatal("snapshot missed")
		}
	}
}
