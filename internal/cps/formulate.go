package cps

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/lp"
	"repro/internal/query"
)

// SolveOptions configures the constraint-program step of CPS.
type SolveOptions struct {
	// Joint formulates one LP over all selections instead of the exact
	// per-σ decomposition. Same optimum, larger tableau; kept for the
	// ablation benchmark.
	Joint bool
	// Integer solves the exact integer program of Figure 3 (branch and
	// bound) instead of the LP relaxation — the paper's CPS rather than
	// MR-CPS.
	Integer bool
	// Epsilon is added before flooring LP values to absorb solver
	// quantisation error; the paper uses 1e-4.
	Epsilon float64
	// Parallelism caps how many per-σ blocks the decomposed formulation
	// solves concurrently. The blocks are independent programs, so they
	// parallelize embarrassingly; results are still folded in sorted key
	// order, keeping Objective sums (floating point) and assignments
	// byte-identical to a serial solve. 0 means GOMAXPROCS; 1 restores
	// serial solving. Ignored by the joint formulation (one program).
	Parallelism int
	// WarmStart, when non-nil, carries solved blocks between decomposed
	// solves (Campaign installs one automatically across waves): unchanged
	// blocks reuse their previous solution verbatim, changed blocks with
	// the same variable set seed lp.SolveFrom with the previous basis.
	// Ignored in Integer mode and by the joint formulation.
	WarmStart *WarmStart
}

func (o SolveOptions) epsilon() float64 {
	if o.Epsilon == 0 {
		return 1e-4
	}
	return o.Epsilon
}

func (o SolveOptions) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Plan is the solved constraint program: for every relevant selection σ, the
// integral number of individuals X_τ(σ) to draw from σ(R) and assign to
// exactly the surveys of τ.
type Plan struct {
	// Assign maps a selection key to its per-τ assignment counts.
	Assign map[string]map[query.Tau]int64
	// Objective is the relaxation optimum before rounding (the C_LP of
	// Section 6.2.2; equal to C_IP when Integer is set).
	Objective float64
	// Vars and Constraints count the formulated program's size.
	Vars, Constraints int
}

// WantPerSelection returns f(σ) = Σ_τ X_τ(σ) for every selection: the sample
// frequency of the derived query Q′.
func (p *Plan) WantPerSelection() map[string]int {
	out := make(map[string]int, len(p.Assign))
	for key, byTau := range p.Assign {
		var sum int64
		for _, x := range byTau {
			sum += x
		}
		if sum > 0 {
			out[key] = int(sum)
		}
	}
	return out
}

// Assigned returns Σ_{τ∋i} X_τ(σ): how many individuals the plan assigns to
// survey i from selection σ.
func (p *Plan) Assigned(key string, i int) int64 {
	var sum int64
	for tau, x := range p.Assign[key] {
		if tau.Contains(i) {
			sum += x
		}
	}
	return sum
}

// Describe renders the plan's non-zero assignments as human-readable lines
// ("{s1,2, s2,1}: 3 → surveys {1,2}"), in deterministic order — the CLI's
// -explain output.
func (p *Plan) Describe(stats *Stats) []string {
	keys := make([]string, 0, len(p.Assign))
	for key := range p.Assign {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var out []string
	for _, key := range keys {
		e, ok := stats.Entries[key]
		if !ok {
			continue
		}
		byTau := p.Assign[key]
		taus := make([]query.Tau, 0, len(byTau))
		for tau := range byTau {
			taus = append(taus, tau)
		}
		sort.Slice(taus, func(a, b int) bool { return taus[a] < taus[b] })
		for _, tau := range taus {
			out = append(out, fmt.Sprintf("%s: %d individuals → surveys %s (of L=%d)",
				e.Sel, byTau[tau], tau, e.Limit))
		}
	}
	return out
}

// SolvePlan formulates the constraint program of Figure 3 for the collected
// statistics and solves it.
func SolvePlan(stats *Stats, costs query.Coster, opts SolveOptions) (*Plan, error) {
	if opts.Joint {
		return solveJoint(stats, costs, opts)
	}
	return solveDecomposed(stats, costs, opts)
}

// varsFor enumerates the decision variables of one selection: every
// non-empty τ ⊆ I(σ), in ascending mask order (deterministic).
func varsFor(sel Selection) []query.Tau {
	var taus []query.Tau
	sel.Tau().Subsets(func(t query.Tau) bool {
		taus = append(taus, t)
		return true
	})
	return taus
}

// buildBlock appends one selection's variables and constraints to the
// problem. base is the problem column of the block's first variable.
func buildBlock(p *lp.Problem, base int, e *SelEntry, taus []query.Tau, costs query.Coster) error {
	nv := len(taus)
	for v, tau := range taus {
		p.Obj[base+v] = costs.Cost(tau)
		p.Names[base+v] = fmt.Sprintf("X%s(%s)", tau, e.Sel)
	}
	// Equivalence constraints: ∀ i ∈ I(σ): Σ_{τ∋i} X_τ = F(A_i, σ).
	for _, i := range e.Sel.Tau().Indexes() {
		row := make([]float64, base+nv)
		for v, tau := range taus {
			if tau.Contains(i) {
				row[base+v] = 1
			}
		}
		if err := p.AddConstraint(row, lp.EQ, float64(e.Freq[i])); err != nil {
			return err
		}
	}
	// Upper bound: Σ_τ X_τ ≤ L(σ).
	row := make([]float64, base+nv)
	for v := range taus {
		row[base+v] = 1
	}
	return p.AddConstraint(row, lp.LE, float64(e.Limit))
}

// solveDecomposed formulates and solves one independent program per relevant
// selection. The blocks share nothing, so they are solved by a bounded pool
// of goroutines (SolveOptions.Parallelism); because floating-point addition
// is not associative, the fold below walks blocks in sorted key order, so
// Objective — and everything downstream of the plan — is byte-identical to a
// serial solve regardless of completion order.
func solveDecomposed(stats *Stats, costs query.Coster, opts SolveOptions) (*Plan, error) {
	keys := stats.SortedKeys()
	blocks := make([]solvedBlock, len(keys))
	workers := opts.parallelism()
	if workers > len(keys) {
		workers = len(keys)
	}
	if workers > 1 {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					blocks[i] = solveBlock(keys[i], stats.Entries[keys[i]], costs, opts)
				}
			}()
		}
		for i := range keys {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i := range keys {
			blocks[i] = solveBlock(keys[i], stats.Entries[keys[i]], costs, opts)
		}
	}

	plan := &Plan{Assign: make(map[string]map[query.Tau]int64, len(stats.Entries))}
	for i, key := range keys {
		b := &blocks[i]
		if b.err != nil {
			return nil, b.err
		}
		if b.sol == nil {
			continue // selection with no variables
		}
		plan.Vars += len(b.taus)
		plan.Constraints += b.cons
		plan.Objective += b.sol.Objective
		plan.Assign[key] = roundAssign(b.taus, b.sol.X, 0, opts)
	}
	return plan, nil
}

// solvedBlock is one selection's solved program, held until the fold.
type solvedBlock struct {
	taus []query.Tau
	sol  *lp.Solution
	cons int
	err  error
}

// solveBlock formulates and solves one selection's program, consulting the
// warm-start store (when one is installed) before and after.
func solveBlock(key string, e *SelEntry, costs query.Coster, opts SolveOptions) (b solvedBlock) {
	b.taus = varsFor(e.Sel)
	if len(b.taus) == 0 {
		return b
	}
	warm := opts.WarmStart
	if opts.Integer {
		warm = nil // basis seeding has no meaning under branch and bound
	}
	var fp string
	var prev warmBlock
	var hasPrev bool
	if warm != nil {
		fp = blockFingerprint(e, b.taus, costs)
		if prev, hasPrev = warm.lookup(key); hasPrev && prev.fp == fp {
			// Identical program: the previous solution, verbatim — the
			// bit-identical dominant case across campaign waves.
			b.sol, b.cons = prev.sol, prev.cons
			warm.count(&warm.hits.Reused)
			return b
		}
	}
	prob := lp.NewProblem(len(b.taus))
	prob.Names = make([]string, len(b.taus))
	if err := buildBlock(prob, 0, e, b.taus, costs); err != nil {
		b.err = err
		return b
	}
	b.cons = len(prob.Cons)
	if warm != nil && hasPrev && prev.vars == len(b.taus) && len(prev.basis) > 0 {
		// Same variable set, different numbers: seed phase 2 from the
		// previous basis. lp.SolveFrom degrades to a cold solve itself when
		// the basis no longer applies.
		b.sol, b.err = checkOptimal(lp.SolveFrom(prob, prev.basis))
		warm.count(&warm.hits.Seeded)
	} else {
		b.sol, b.err = solveOne(prob, opts)
		if warm != nil {
			warm.count(&warm.hits.Cold)
		}
	}
	if b.err != nil {
		b.err = fmt.Errorf("cps: selection %s: %w", e.Sel, b.err)
		return b
	}
	if warm != nil {
		warm.store(key, warmBlock{fp: fp, vars: len(b.taus), cons: b.cons, basis: b.sol.Basis, sol: b.sol})
	}
	return b
}

func solveJoint(stats *Stats, costs query.Coster, opts SolveOptions) (*Plan, error) {
	keys := stats.SortedKeys()
	// First pass: count variables.
	total := 0
	tausByKey := make(map[string][]query.Tau, len(keys))
	for _, key := range keys {
		taus := varsFor(stats.Entries[key].Sel)
		tausByKey[key] = taus
		total += len(taus)
	}
	prob := lp.NewProblem(total)
	prob.Names = make([]string, total)
	base := 0
	for _, key := range keys {
		e := stats.Entries[key]
		taus := tausByKey[key]
		if len(taus) == 0 {
			continue
		}
		if err := buildBlock(prob, base, e, taus, costs); err != nil {
			return nil, err
		}
		base += len(taus)
	}
	sol, err := solveOne(prob, opts)
	if err != nil {
		return nil, err
	}
	plan := &Plan{
		Assign:      make(map[string]map[query.Tau]int64, len(keys)),
		Objective:   sol.Objective,
		Vars:        total,
		Constraints: len(prob.Cons),
	}
	base = 0
	for _, key := range keys {
		taus := tausByKey[key]
		if len(taus) == 0 {
			continue
		}
		plan.Assign[key] = roundAssign(taus, sol.X, base, opts)
		base += len(taus)
	}
	return plan, nil
}

func solveOne(prob *lp.Problem, opts SolveOptions) (*lp.Solution, error) {
	if opts.Integer {
		return checkOptimal(lp.SolveInteger(prob, 0))
	}
	return checkOptimal(lp.Solve(prob))
}

func checkOptimal(sol *lp.Solution, err error) (*lp.Solution, error) {
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("cps: constraint program %v", sol.Status)
	}
	return sol, nil
}

// roundAssign converts the solver's values for one block into integral
// assignments: ⌊x + ε⌋ for the LP relaxation (Section 5.2.5.2), exact
// rounding for the IP.
func roundAssign(taus []query.Tau, x []float64, base int, opts SolveOptions) map[query.Tau]int64 {
	out := make(map[query.Tau]int64, len(taus))
	for v, tau := range taus {
		val := x[base+v]
		var n int64
		if opts.Integer {
			n = int64(math.Round(val))
		} else {
			n = int64(math.Floor(val + opts.epsilon()))
		}
		if n > 0 {
			out[tau] = n
		}
	}
	return out
}
