// Package cps implements the paper's Constraint Program Selector (Algorithm
// 2, CPS) and its scalable variant MR-CPS (Section 5.2.5): optimal-cost
// answering of multi-survey stratified-sampling (MSSD) queries.
//
// The pipeline is:
//
//  1. answer the MSSD representatively but non-optimally with MR-MQE;
//  2. derive the relevant stratum selections [[Q]]* and the frequencies
//     F(A_i, σ) from stratum-selection tries (SSTs) built over the initial
//     answers;
//  3. count the stratum-selection limits L(σ) with a MapReduce job
//     (Figure 4);
//  4. formulate the linear program of Figure 3 over decision variables
//     X_τ(σ) and solve it (per-σ decomposed by default — every constraint
//     of Figure 3 touches a single σ, so the decomposition is exact; a
//     joint formulation and an exact integer-programming mode exist for
//     the ablation and optimality analyses);
//  5. draw the combined answer for the derived query Q′ in one MapReduce
//     pass keyed by stratum selection, and deal X_τ(σ) tuples to the
//     surveys of each τ;
//  6. top up rounding deficits with a residual sampling pass.
package cps

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/predicate"
	"repro/internal/query"
)

// None marks a query without a stratum constraint in a selection.
const None = -1

// Selection is a stratum selection σ over n SSD queries: entry i is the
// stratum index query Q_i contributes, or None. It is stored as a trie path.
type Selection []int

// SelectionOf computes σ(t), the maximal stratum selection the tuple
// satisfies: for each query, the index of the (unique, by disjointness)
// stratum whose condition t satisfies, or None.
func SelectionOf(t *dataset.Tuple, compiled [][]predicate.Pred) Selection {
	sel := make(Selection, len(compiled))
	for qi, preds := range compiled {
		sel[qi] = query.MatchStratum(preds, t)
	}
	return sel
}

// Key encodes the selection as a compact string usable as a map and shuffle
// key. Each level is two big-endian bytes of (index+1); None encodes as 0.
func (s Selection) Key() string {
	buf := make([]byte, 2*len(s))
	for i, v := range s {
		binary.BigEndian.PutUint16(buf[2*i:], uint16(v+1))
	}
	return string(buf)
}

// ParseKey decodes a selection key produced by Key for n queries.
func ParseKey(key string, n int) (Selection, error) {
	if len(key) != 2*n {
		return nil, fmt.Errorf("cps: selection key has %d bytes, want %d", len(key), 2*n)
	}
	sel := make(Selection, n)
	for i := 0; i < n; i++ {
		sel[i] = int(binary.BigEndian.Uint16([]byte(key[2*i:2*i+2]))) - 1
	}
	return sel, nil
}

// Empty reports whether the selection has no stratum constraints (the tuple
// matched no query); such tuples are irrelevant to the MSSD.
func (s Selection) Empty() bool {
	for _, v := range s {
		if v != None {
			return false
		}
	}
	return true
}

// Tau returns I(σ): the index set of queries contributing a stratum.
func (s Selection) Tau() query.Tau {
	var t query.Tau
	for i, v := range s {
		if v != None {
			t = t.With(i)
		}
	}
	return t
}

// Clone copies the selection.
func (s Selection) Clone() Selection { return append(Selection(nil), s...) }

// String renders the selection like "{s1,2, s3,1}" (1-based, paper style).
func (s Selection) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, v := range s {
		if v == None {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "s%d,%d", i+1, v+1)
	}
	b.WriteByte('}')
	return b.String()
}

// Projection returns π_i(σ): the condition of query i's stratum in σ, or —
// when query i contributes none — the negation of the disjunction of all of
// query i's stratum conditions (Section 5.2.2).
func Projection(queries []*query.SSD, s Selection, i int) predicate.Expr {
	if s[i] != None {
		return queries[i].Strata[s[i]].Cond
	}
	cover := queries[i].CoverageFormula()
	if cover == predicate.Literal(false) {
		return predicate.True
	}
	return predicate.Not{X: cover}
}

// Formula returns φ(σ) = π_1(σ) ∧ ... ∧ π_n(σ), the stratum condition of the
// derived query Q′ for this selection. MR-CPS samples by selection key
// instead of evaluating this formula, but it is exposed for CPS-as-described
// and for tests.
func Formula(queries []*query.SSD, s Selection) predicate.Expr {
	parts := make([]predicate.Expr, len(queries))
	for i := range queries {
		parts[i] = Projection(queries, s, i)
	}
	return predicate.AndAll(parts...)
}
