package cps

import (
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/stats"
)

func TestSequentialCPSAnswersSatisfy(t *testing.T) {
	r := testPop(500)
	m := example6MSSD(10, 12, 11, 9)
	res, err := Sequential(m, r, rand.New(rand.NewSource(1)), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range m.Queries {
		if err := res.Answers[qi].Satisfies(q, r); err != nil {
			t.Fatalf("survey %d: %v", qi, err)
		}
	}
	if res.Answers.Cost(m.Costs) > res.Initial.Cost(m.Costs) {
		t.Fatal("sequential CPS did not reduce cost")
	}
}

func TestSequentialMatchesMRInvariants(t *testing.T) {
	r := testPop(500)
	m := example6MSSD(10, 12, 11, 9)
	seq, err := Sequential(m, r, rand.New(rand.NewSource(2)), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mr, err := Run(zcluster(3), m, r.Schema(), splitsOf(t, r, 3), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Answer sizes are deterministic (frequencies), so they must agree.
	for qi := range m.Queries {
		if seq.Answers[qi].Size() != mr.Answers[qi].Size() {
			t.Fatalf("survey %d: sequential %d vs MR %d tuples",
				qi, seq.Answers[qi].Size(), mr.Answers[qi].Size())
		}
	}
	// The LP dimensions are data-dependent but of the same magnitude.
	if seq.LP.Selections == 0 || mr.LP.Selections == 0 {
		t.Fatal("no selections collected")
	}
}

func TestSequentialIntegerMode(t *testing.T) {
	r := testPop(400)
	m := example6MSSD(8, 8, 8, 8)
	res, err := Sequential(m, r, rand.New(rand.NewSource(3)), SolveOptions{Integer: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResidualTuples != 0 {
		t.Fatalf("integer mode produced %d residual tuples", res.ResidualTuples)
	}
	for qi, q := range m.Queries {
		if err := res.Answers[qi].Satisfies(q, r); err != nil {
			t.Fatalf("survey %d: %v", qi, err)
		}
	}
}

func TestSequentialRejectsInvalid(t *testing.T) {
	r := testPop(50)
	bad := &query.MSSD{} // no queries, no costs
	if _, err := Sequential(bad, r, rand.New(rand.NewSource(1)), SolveOptions{}); err == nil {
		t.Fatal("want validation error")
	}
}

// TestSequentialRepresentative: the sequential CPS answer is uniform per
// stratum, like the MR version.
func TestSequentialRepresentative(t *testing.T) {
	const runs = 800
	const men = 30
	r := testPop(60) // first 30 even IDs are gender=0... use counting on survey 1 stratum 0 (gender=1)
	m := example6MSSD(6, 6, 6, 6)
	counts := map[int64]int64{}
	for run := 0; run < runs; run++ {
		res, err := Sequential(m, r, rand.New(rand.NewSource(int64(run)*17+1)), SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range res.Answers[0].Strata[0] {
			counts[tp.ID]++
		}
	}
	vals := make([]int64, 0, len(counts))
	for _, c := range counts {
		vals = append(vals, c)
	}
	if len(vals) < men-2 {
		t.Fatalf("only %d distinct men ever selected", len(vals))
	}
	p, err := stats.ChiSquareUniformP(vals)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("sequential CPS biased: p = %g", p)
	}
}
