package cps

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/query"
	"repro/internal/stratified"
)

// Options configures an MR-CPS run.
type Options struct {
	// Seed makes the run reproducible; the pipeline's MapReduce jobs
	// derive their own seeds from it.
	Seed int64
	// Solve configures the constraint-program step (per-σ LP by default).
	Solve SolveOptions
	// Naive disables combiners in the underlying sampling jobs.
	Naive bool
	// Exclude removes individuals (by ID) from the whole pipeline — e.g.
	// participants of a previous survey campaign who must not be asked
	// again (survey fatigue across campaigns, not just within one MSSD).
	Exclude map[int64]struct{}
}

// LPStats reports the constraint-program step, feeding Figure 8.
type LPStats struct {
	FormulateTime time.Duration
	SolveTime     time.Duration
	Vars          int
	Constraints   int
	Selections    int
	Objective     float64 // C_LP (or C_IP in integer mode)
}

// Result is the outcome of an MR-CPS run.
type Result struct {
	// Answers is the final answer set A*.
	Answers query.MultiAnswer
	// Initial is the representative non-optimal answer A of step 1,
	// exposed for the representativeness tests.
	Initial query.MultiAnswer
	// Metrics accumulates all MapReduce jobs of the pipeline.
	Metrics mapreduce.Metrics
	// LP reports the constraint-program step.
	LP LPStats
	// PlannedTuples is the number of individuals the plan assigned
	// (Σ X_τ(σ)); ResidualTuples the number added by the residual phase to
	// cover rounding deficits. Their ratio is the §6.2.2 metric.
	PlannedTuples  int
	ResidualTuples int
	// PlannedPerSurvey and ResidualPerSurvey break the plan delivery down
	// by survey index: PlannedPerSurvey[i] counts interview slots of survey
	// i filled by dealt plan tuples (an individual shared across k surveys
	// counts once in each), ResidualPerSurvey[i] the slots topped up by the
	// residual phase. The audit layer uses them for per-survey rounding-
	// deficit attribution.
	PlannedPerSurvey  []int
	ResidualPerSurvey []int
	// Plan is the solved constraint program, for inspection (which
	// selections share how many individuals across which surveys).
	Plan *Plan
	// Stats holds the relevant selections [[Q]]* with F and L values.
	Stats *Stats
}

// Run answers the MSSD query with MR-CPS over the distributed population.
func Run(c *mapreduce.Cluster, m *query.MSSD, schema *dataset.Schema, splits []dataset.Split, opts Options) (*Result, error) {
	if err := m.Validate(schema); err != nil {
		return nil, err
	}
	return run(c, m, schema, splits, opts)
}

// RunUnvalidated is Run without the SSD validation step; generated query
// groups are valid by construction, and validation of very wide queries can
// dominate the runtime being measured.
func RunUnvalidated(c *mapreduce.Cluster, m *query.MSSD, schema *dataset.Schema, splits []dataset.Split, opts Options) (*Result, error) {
	return run(c, m, schema, splits, opts)
}

func run(c *mapreduce.Cluster, m *query.MSSD, schema *dataset.Schema, splits []dataset.Split, opts Options) (*Result, error) {
	queries := m.Queries
	n := len(queries)
	compiled, err := CompileQueries(queries, schema)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	logDebug := slog.Default().Enabled(context.Background(), slog.LevelDebug)

	// Step 1: representative non-optimal answer A (MR-MQE).
	initial, met, err := stratified.RunMQE(c, queries, schema, splits, stratified.Options{
		Seed:    opts.Seed + 1,
		Naive:   opts.Naive,
		Exclude: opts.Exclude,
	})
	if err != nil {
		return nil, fmt.Errorf("cps: initial answer: %w", err)
	}
	res.Initial = initial
	res.Metrics.Add(met)
	if logDebug {
		slog.Debug("cps step 1: initial MR-MQE answer",
			"queries", n, "shuffle_records", met.ShuffleRecords,
			"simulated", met.SimulatedTotal())
	}

	// Step 2: [[Q]]* and F(A_i, σ) from SSTs over the initial answers.
	tFormStart := time.Now()
	stats := CollectFrequencies(queries, initial, compiled)
	res.LP.Selections = len(stats.Entries)

	// Step 3: stratum-selection limits L(σ) (Figure 4 job).
	met, err = CountLimits(c, compiled, stats.Entries, splits, opts.Seed+2, opts.Exclude)
	if err != nil {
		return nil, fmt.Errorf("cps: limits: %w", err)
	}
	res.Metrics.Add(met)
	res.LP.FormulateTime = time.Since(tFormStart)
	if logDebug {
		slog.Debug("cps steps 2-3: selections and limits",
			"selections", res.LP.Selections, "formulate", res.LP.FormulateTime)
	}

	// Step 4: formulate and solve the constraint program of Figure 3.
	tSolveStart := time.Now()
	plan, err := SolvePlan(stats, m.Costs, opts.Solve)
	if err != nil {
		return nil, err
	}
	res.LP.SolveTime = time.Since(tSolveStart)
	res.LP.Vars = plan.Vars
	res.LP.Constraints = plan.Constraints
	res.LP.Objective = plan.Objective
	res.Plan = plan
	res.Stats = stats
	if logDebug {
		slog.Debug("cps step 4: constraint program solved",
			"vars", plan.Vars, "constraints", plan.Constraints,
			"objective", plan.Objective, "solve", res.LP.SolveTime)
	}

	// Step 5: answer the derived query Q′ in one pass keyed by stratum
	// selection, and deal tuples to surveys per X_τ(σ).
	want := plan.WantPerSelection()
	classify := func(t *dataset.Tuple, emit func(string)) {
		sel := SelectionOf(t, compiled)
		if !sel.Empty() {
			emit(sel.Key())
		}
	}
	samples, met, err := stratified.RunKeyed(c, classify, want, splits, stratified.Options{
		Seed:    opts.Seed + 3,
		Naive:   opts.Naive,
		Exclude: opts.Exclude,
	})
	if err != nil {
		return nil, fmt.Errorf("cps: combined answer: %w", err)
	}
	res.Metrics.Add(met)
	if logDebug {
		slog.Debug("cps step 5: derived query answered",
			"classes", len(want), "shuffle_records", met.ShuffleRecords,
			"simulated", met.SimulatedTotal())
	}

	answers := make(query.MultiAnswer, n)
	chosen := make([]map[int64]struct{}, n) // per-survey selected IDs
	for i, q := range queries {
		answers[i] = query.NewAnswer(len(q.Strata))
		chosen[i] = make(map[int64]struct{})
	}
	res.PlannedPerSurvey = make([]int, n)
	res.ResidualPerSurvey = make([]int, n)
	dealt := make(map[string][]int64, len(stats.Entries)) // per key, per survey
	for _, key := range stats.SortedKeys() {
		byTau := plan.Assign[key]
		if len(byTau) == 0 {
			continue
		}
		sel := stats.Entries[key].Sel
		pool := samples[key]
		counts := make([]int64, n)
		dealt[key] = counts
		taus := make([]query.Tau, 0, len(byTau))
		for tau := range byTau {
			taus = append(taus, tau)
		}
		sort.Slice(taus, func(a, b int) bool { return taus[a] < taus[b] })
		for _, tau := range taus {
			take := byTau[tau]
			for take > 0 && len(pool) > 0 {
				t := pool[0]
				pool = pool[1:]
				take--
				res.PlannedTuples++
				for _, i := range tau.Indexes() {
					answers[i].Strata[sel[i]] = append(answers[i].Strata[sel[i]], t)
					chosen[i][t.ID] = struct{}{}
					counts[i]++
					res.PlannedPerSurvey[i]++
				}
			}
		}
	}

	// Step 6: residual phase — top up each survey's per-selection deficit
	// (F(A_i, σ) minus what the rounded plan delivered) with fresh uniform
	// draws from σ(R) excluding the survey's already-chosen individuals.
	deficit := make(map[string]int) // key: residKey(i, σ)
	for _, key := range stats.SortedKeys() {
		e := stats.Entries[key]
		for i := 0; i < n; i++ {
			var got int64
			if counts, ok := dealt[key]; ok {
				got = counts[i]
			}
			if d := e.Freq[i] - got; d > 0 {
				deficit[residKey(i, key)] = int(d)
			}
		}
	}
	if len(deficit) > 0 {
		classifyResid := func(t *dataset.Tuple, emit func(string)) {
			sel := SelectionOf(t, compiled)
			if sel.Empty() {
				return
			}
			key := sel.Key()
			for i := 0; i < n; i++ {
				rk := residKey(i, key)
				if _, need := deficit[rk]; !need {
					continue
				}
				if _, taken := chosen[i][t.ID]; taken {
					continue
				}
				emit(rk)
			}
		}
		residSamples, met, err := stratified.RunKeyed(c, classifyResid, deficit, splits, stratified.Options{
			Seed:    opts.Seed + 4,
			Naive:   opts.Naive,
			Exclude: opts.Exclude,
		})
		if err != nil {
			return nil, fmt.Errorf("cps: residual phase: %w", err)
		}
		res.Metrics.Add(met)
		for rk, sample := range residSamples {
			i, key := parseResidKey(rk)
			sel := stats.Entries[key].Sel
			for _, t := range sample {
				answers[i].Strata[sel[i]] = append(answers[i].Strata[sel[i]], t)
				chosen[i][t.ID] = struct{}{}
				res.ResidualTuples++
				res.ResidualPerSurvey[i]++
			}
		}
	}

	if logDebug {
		slog.Debug("cps step 6: residual phase done",
			"deficient_classes", len(deficit),
			"planned_tuples", res.PlannedTuples, "residual_tuples", res.ResidualTuples)
	}

	res.Answers = answers
	return res, nil
}

// residKey namespaces a residual class by survey index.
func residKey(i int, selKey string) string {
	return fmt.Sprintf("%04d/", i) + selKey
}

func parseResidKey(rk string) (int, string) {
	var i int
	fmt.Sscanf(rk[:4], "%d", &i)
	return i, rk[5:]
}
