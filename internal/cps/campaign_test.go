package cps

import "testing"

func TestCampaignWavesDisjoint(t *testing.T) {
	r := testPop(900)
	m := example6MSSD(8, 8, 8, 8)
	camp := NewCampaign(zcluster(3), r.Schema(), splitsOf(t, r, 3))

	var waveIDs []map[int64]struct{}
	for wave := 0; wave < 3; wave++ {
		res, err := camp.RunWave(m, Options{Seed: int64(wave) * 101})
		if err != nil {
			t.Fatal(err)
		}
		ids := make(map[int64]struct{})
		for id := range res.Answers.Assignments() {
			ids[id] = struct{}{}
		}
		waveIDs = append(waveIDs, ids)
		// Each wave still fills every survey completely.
		for qi, q := range m.Queries {
			if got, want := res.Answers[qi].Size(), q.TotalFreq(); got != want {
				t.Fatalf("wave %d survey %d: %d of %d slots", wave, qi, got, want)
			}
		}
	}
	// Waves must be pairwise disjoint.
	total := 0
	for w1 := range waveIDs {
		total += len(waveIDs[w1])
		for w2 := w1 + 1; w2 < len(waveIDs); w2++ {
			for id := range waveIDs[w1] {
				if _, dup := waveIDs[w2][id]; dup {
					t.Fatalf("individual %d in waves %d and %d", id, w1, w2)
				}
			}
		}
	}
	if camp.TotalSurveyed() != total {
		t.Fatalf("TotalSurveyed %d, want %d", camp.TotalSurveyed(), total)
	}
	if len(camp.Waves) != 3 {
		t.Fatalf("%d waves recorded", len(camp.Waves))
	}
}

func TestCampaignMergesCallerExclusions(t *testing.T) {
	r := testPop(600)
	m := example6MSSD(5, 5, 5, 5)
	camp := NewCampaign(zcluster(2), r.Schema(), splitsOf(t, r, 2))
	// Caller-provided ban on top of the campaign's own bookkeeping.
	ban := map[int64]struct{}{}
	for i := int64(0); i < 100; i++ {
		ban[i] = struct{}{}
	}
	res, err := camp.RunWave(m, Options{Seed: 9, Exclude: ban})
	if err != nil {
		t.Fatal(err)
	}
	for id := range res.Answers.Assignments() {
		if _, banned := ban[id]; banned {
			t.Fatalf("banned individual %d surveyed", id)
		}
	}
}
