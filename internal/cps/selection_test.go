package cps

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/stratified"
)

func selQueries() []*query.SSD {
	q1 := query.NewSSD("Q1",
		query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: 5},
		query.Stratum{Cond: predicate.MustParse("gender = 0"), Freq: 5},
	)
	q2 := query.NewSSD("Q2",
		query.Stratum{Cond: predicate.MustParse("income < 500"), Freq: 5},
		query.Stratum{Cond: predicate.MustParse("income > 800"), Freq: 5}, // partial coverage
	)
	return []*query.SSD{q1, q2}
}

func TestSelectionOf(t *testing.T) {
	queries := selQueries()
	compiled, err := CompileQueries(queries, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		attrs []int64
		want  Selection
	}{
		{[]int64{1, 100, 20}, Selection{0, 0}},    // man, low income
		{[]int64{0, 900, 20}, Selection{1, 1}},    // woman, high income
		{[]int64{1, 600, 20}, Selection{0, None}}, // man, mid income — Q2 has no stratum
	}
	for _, c := range cases {
		tp := dataset.Tuple{Attrs: c.attrs}
		got := SelectionOf(&tp, compiled)
		if got.Key() != c.want.Key() {
			t.Fatalf("SelectionOf(%v) = %v, want %v", c.attrs, got, c.want)
		}
	}
}

func TestSelectionKeyRoundTrip(t *testing.T) {
	f := func(raw []int16, nRaw uint8) bool {
		n := int(nRaw)%8 + 1
		sel := make(Selection, n)
		for i := range sel {
			v := -1
			if i < len(raw) {
				v = int(raw[i])
				if v < -1 {
					v = -v
				}
				if v > 60000 {
					v = 60000
				}
			}
			sel[i] = v
		}
		parsed, err := ParseKey(sel.Key(), n)
		if err != nil {
			return false
		}
		return parsed.Key() == sel.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseKeyErrors(t *testing.T) {
	if _, err := ParseKey("abc", 2); err == nil {
		t.Fatal("want length error")
	}
}

func TestSelectionHelpers(t *testing.T) {
	sel := Selection{2, None, 0}
	if sel.Empty() {
		t.Fatal("non-empty selection reported empty")
	}
	if !(Selection{None, None}).Empty() {
		t.Fatal("empty selection not reported")
	}
	if tau := sel.Tau(); !tau.Contains(0) || tau.Contains(1) || !tau.Contains(2) {
		t.Fatalf("Tau = %v", tau)
	}
	if s := sel.String(); s != "{s1,3, s3,1}" {
		t.Fatalf("String = %q", s)
	}
	cl := sel.Clone()
	cl[0] = 9
	if sel[0] != 2 {
		t.Fatal("Clone aliases")
	}
}

func TestProjectionWithStratum(t *testing.T) {
	queries := selQueries()
	p := Projection(queries, Selection{1, 0}, 0)
	if !predicate.Equal(p, predicate.MustParse("gender = 0")) {
		t.Fatalf("projection = %q", p)
	}
}

func TestProjectionWithoutStratumIsCoverageNegation(t *testing.T) {
	queries := selQueries()
	schema := testSchema()
	p := Projection(queries, Selection{0, None}, 1)
	// π must hold exactly for tuples matching no stratum of Q2.
	compiled := predicate.MustCompile(p, schema)
	mid := dataset.Tuple{Attrs: []int64{1, 600, 20}}
	low := dataset.Tuple{Attrs: []int64{1, 100, 20}}
	if !compiled(&mid) {
		t.Fatal("mid-income tuple should satisfy the negated coverage")
	}
	if compiled(&low) {
		t.Fatal("low-income tuple satisfies Q2's stratum 1; projection must exclude it")
	}
}

func TestFormulaSelectsExactlyMatchingTuples(t *testing.T) {
	queries := selQueries()
	schema := testSchema()
	compiled, _ := CompileQueries(queries, schema)
	r := testPop(300)
	for _, sel := range []Selection{{0, 0}, {1, None}, {0, 1}} {
		f := Formula(queries, sel)
		pred, err := predicate.Compile(f, schema)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < r.Len(); i++ {
			tp := r.Tuple(i)
			want := SelectionOf(&tp, compiled).Key() == sel.Key()
			if got := pred(&tp); got != want {
				t.Fatalf("selection %v tuple %v: formula %v, selection-match %v", sel, tp.Attrs, got, want)
			}
		}
	}
}

func TestVarsForOrderingDeterministic(t *testing.T) {
	sel := Selection{0, 1, None, 2}
	taus := varsFor(sel)
	if len(taus) != 7 { // 2^3 - 1
		t.Fatalf("%d vars", len(taus))
	}
	for i := 1; i < len(taus); i++ {
		if taus[i] <= taus[i-1] {
			t.Fatalf("taus not ascending: %v", taus)
		}
	}
	for _, tau := range taus {
		if !tau.SubsetOf(sel.Tau()) {
			t.Fatalf("tau %v outside I(σ)", tau)
		}
	}
}

func TestCountLimitsMapReduceMatchesInMemory(t *testing.T) {
	r := testPop(400)
	m := example6MSSD(10, 10, 10, 10)
	compiled, _ := CompileQueries(m.Queries, r.Schema())
	initial, err := runInitial(t, m, r)
	if err != nil {
		t.Fatal(err)
	}
	statsA := CollectFrequencies(m.Queries, initial, compiled)
	statsB := CollectFrequencies(m.Queries, initial, compiled)
	if _, err := CountLimitsInMemory(r, compiled, statsA.Entries); err != nil {
		t.Fatal(err)
	}
	splits := splitsOf(t, r, 3)
	if _, err := CountLimits(zcluster(3), compiled, statsB.Entries, splits, 4, nil); err != nil {
		t.Fatal(err)
	}
	for key, a := range statsA.Entries {
		b := statsB.Entries[key]
		if a.Limit != b.Limit {
			t.Fatalf("selection %s: in-memory limit %d, MapReduce limit %d", a.Sel, a.Limit, b.Limit)
		}
		if a.Limit < a.TotalFreq()/int64(len(m.Queries)) {
			t.Fatalf("selection %s: limit %d below any single F", a.Sel, a.Limit)
		}
	}
}

func runInitial(t *testing.T, m *query.MSSD, r *dataset.Relation) (query.MultiAnswer, error) {
	t.Helper()
	ans, _, err := stratified.RunMQE(zcluster(3), m.Queries, r.Schema(), splitsOf(t, r, 3), stratified.Options{Seed: 21})
	return ans, err
}

func TestRoundAssignEpsilon(t *testing.T) {
	taus := []query.Tau{query.NewTau(0), query.NewTau(1)}
	x := []float64{2.99995, 1.2}
	got := roundAssign(taus, x, 0, SolveOptions{})
	if got[taus[0]] != 3 { // 2.99995 + 1e-4 floors to 3
		t.Fatalf("X0 = %d, want 3 (epsilon absorbs solver error)", got[taus[0]])
	}
	if got[taus[1]] != 1 {
		t.Fatalf("X1 = %d, want 1", got[taus[1]])
	}
	exact := roundAssign(taus, []float64{2.5, 0.4}, 0, SolveOptions{Integer: true})
	if exact[taus[0]] != 3 {
		t.Fatalf("integer mode rounds: %v", exact)
	}
	if _, present := exact[taus[1]]; present {
		t.Fatal("zero assignments must be omitted")
	}
}

func TestWantPerSelectionAndAssigned(t *testing.T) {
	plan := &Plan{Assign: map[string]map[query.Tau]int64{
		"a": {query.NewTau(0): 2, query.NewTau(0, 1): 3},
		"b": {},
	}}
	want := plan.WantPerSelection()
	if want["a"] != 5 {
		t.Fatalf("want[a] = %d", want["a"])
	}
	if _, present := want["b"]; present {
		t.Fatal("empty selections must be omitted")
	}
	if plan.Assigned("a", 0) != 5 || plan.Assigned("a", 1) != 3 || plan.Assigned("a", 2) != 0 {
		t.Fatal("Assigned sums wrong")
	}
}
