package cps

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/stratified"
)

func testSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Field{Name: "gender", Min: 0, Max: 1},
		dataset.Field{Name: "income", Min: 0, Max: 1000},
		dataset.Field{Name: "age", Min: 18, Max: 90},
	)
}

// testPop builds a deterministic mixed population.
func testPop(n int) *dataset.Relation {
	r := dataset.NewRelation(testSchema())
	for i := int64(0); i < int64(n); i++ {
		r.MustAdd(dataset.Tuple{
			ID:    i,
			Attrs: []int64{i % 2, (i * 37) % 1001, 18 + (i*13)%73},
		})
	}
	return r
}

// example6MSSD mirrors the paper's Example 6: Q1 stratifies by gender, Q2 by
// income, with uniform $1 interview and sharing costs (sharing always pays).
func example6MSSD(f1m, f1f, f2lo, f2hi int) *query.MSSD {
	q1 := query.NewSSD("Q1",
		query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: f1m},
		query.Stratum{Cond: predicate.MustParse("gender = 0"), Freq: f1f},
	)
	q2 := query.NewSSD("Q2",
		query.Stratum{Cond: predicate.MustParse("income < 500"), Freq: f2lo},
		query.Stratum{Cond: predicate.MustParse("income >= 500"), Freq: f2hi},
	)
	return query.NewMSSD(query.PenaltyCosts{Interview: 1}, q1, q2)
}

func zcluster(n int) *mapreduce.Cluster {
	return &mapreduce.Cluster{Slaves: n, SlotsPerSlave: 1, Cost: mapreduce.ZeroCostModel()}
}

func splitsOf(t *testing.T, r *dataset.Relation, k int) []dataset.Split {
	t.Helper()
	splits, err := dataset.Partition(r, k, dataset.Contiguous, nil)
	if err != nil {
		t.Fatal(err)
	}
	return splits
}

func TestCPSAnswersSatisfyAllQueries(t *testing.T) {
	r := testPop(400)
	m := example6MSSD(10, 15, 12, 12)
	res, err := Run(zcluster(3), m, r.Schema(), splitsOf(t, r, 3), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range m.Queries {
		if err := res.Answers[qi].Satisfies(q, r); err != nil {
			t.Fatalf("final answer %d: %v", qi, err)
		}
		if err := res.Initial[qi].Satisfies(q, r); err != nil {
			t.Fatalf("initial answer %d: %v", qi, err)
		}
	}
}

func TestCPSSharesWhenFree(t *testing.T) {
	r := testPop(600)
	m := example6MSSD(10, 15, 12, 12)
	res, err := Run(zcluster(2), m, r.Schema(), splitsOf(t, r, 2), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cpsCost := res.Answers.Cost(m.Costs)
	mqeCost := res.Initial.Cost(m.Costs)
	if cpsCost > mqeCost {
		t.Fatalf("CPS cost %g exceeds MQE cost %g", cpsCost, mqeCost)
	}
	// Sharing is bounded per stratum selection: at best the cost is
	// Σ_σ max(F1(σ), F2(σ)) ≈ 27–29 for these frequencies (25 would need
	// the two surveys' strata to align perfectly), plus a few unshared
	// residual interviews from LP rounding. MQE's cost is ≈ 25+24 = 49
	// minus incidental overlap; CPS must land far below that.
	if cpsCost > 34 {
		t.Fatalf("CPS cost %g, want near the per-selection sharing bound (≈27-31)", cpsCost)
	}
	hist := res.Answers.SharingHistogram()
	if hist[2] < 10 {
		t.Fatalf("only %d individuals shared between the two surveys", hist[2])
	}
}

func TestCPSRespectsPenalties(t *testing.T) {
	r := testPop(600)
	q1 := query.NewSSD("Q1",
		query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: 10},
		query.Stratum{Cond: predicate.MustParse("gender = 0"), Freq: 10},
	)
	q2 := query.NewSSD("Q2",
		query.Stratum{Cond: predicate.MustParse("income < 500"), Freq: 10},
		query.Stratum{Cond: predicate.MustParse("income >= 500"), Freq: 10},
	)
	// Sharing Q1 and Q2 is penalised beyond two separate interviews.
	costs := query.PenaltyCosts{
		Interview: 4,
		Penalties: map[query.Tau]float64{query.NewTau(0, 1): 10},
	}
	m := query.NewMSSD(costs, q1, q2)
	res, err := Run(zcluster(2), m, r.Schema(), splitsOf(t, r, 2), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hist := res.Answers.SharingHistogram()
	if hist[2] != 0 {
		t.Fatalf("%d individuals shared despite the penalty", hist[2])
	}
	// All 40 interview slots must be filled by distinct individuals.
	if got := res.Answers.UniqueIndividuals(); got != 40 {
		t.Fatalf("unique individuals %d, want 40", got)
	}
}

func TestCPSPlanInvariants(t *testing.T) {
	r := testPop(500)
	m := example6MSSD(8, 9, 10, 7)
	compiled, err := CompileQueries(m.Queries, r.Schema())
	if err != nil {
		t.Fatal(err)
	}
	initial, _, err := stratified.RunMQE(zcluster(2), m.Queries, r.Schema(), splitsOf(t, r, 2), stratified.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	statsQ := CollectFrequencies(m.Queries, initial, compiled)
	if _, err := CountLimitsInMemory(r, compiled, statsQ.Entries); err != nil {
		t.Fatal(err)
	}
	plan, err := SolvePlan(statsQ, m.Costs, SolveOptions{Integer: true})
	if err != nil {
		t.Fatal(err)
	}
	for key, e := range statsQ.Entries {
		var total int64
		for tau, x := range plan.Assign[key] {
			if x < 0 {
				t.Fatalf("negative assignment %d", x)
			}
			if !tau.SubsetOf(e.Sel.Tau()) {
				t.Fatalf("assignment to τ=%v outside I(σ)=%v", tau, e.Sel.Tau())
			}
			total += x
		}
		if total > e.Limit {
			t.Fatalf("selection %s assigns %d > limit %d", e.Sel, total, e.Limit)
		}
		// Integer mode: the equivalence constraints hold exactly.
		for i := range m.Queries {
			if got := plan.Assigned(key, i); got != e.Freq[i] {
				t.Fatalf("selection %s survey %d: assigned %d, want F=%d", e.Sel, i, got, e.Freq[i])
			}
		}
	}
}

func TestJointAndDecomposedLPAgree(t *testing.T) {
	r := testPop(500)
	m := example6MSSD(8, 9, 10, 7)
	compiled, _ := CompileQueries(m.Queries, r.Schema())
	initial, _, err := stratified.RunMQE(zcluster(2), m.Queries, r.Schema(), splitsOf(t, r, 2), stratified.Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	statsQ := CollectFrequencies(m.Queries, initial, compiled)
	if _, err := CountLimitsInMemory(r, compiled, statsQ.Entries); err != nil {
		t.Fatal(err)
	}
	dec, err := SolvePlan(statsQ, m.Costs, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	joint, err := SolvePlan(statsQ, m.Costs, SolveOptions{Joint: true})
	if err != nil {
		t.Fatal(err)
	}
	if diff := dec.Objective - joint.Objective; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("decomposed %g vs joint %g", dec.Objective, joint.Objective)
	}
	if dec.Vars != joint.Vars {
		t.Fatalf("vars %d vs %d", dec.Vars, joint.Vars)
	}
}

func TestLPLowerBoundsIPLowerBoundsRealised(t *testing.T) {
	r := testPop(500)
	m := example6MSSD(8, 9, 10, 7)
	compiled, _ := CompileQueries(m.Queries, r.Schema())
	initial, _, err := stratified.RunMQE(zcluster(2), m.Queries, r.Schema(), splitsOf(t, r, 2), stratified.Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	statsQ := CollectFrequencies(m.Queries, initial, compiled)
	if _, err := CountLimitsInMemory(r, compiled, statsQ.Entries); err != nil {
		t.Fatal(err)
	}
	lpPlan, err := SolvePlan(statsQ, m.Costs, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ipPlan, err := SolvePlan(statsQ, m.Costs, SolveOptions{Integer: true})
	if err != nil {
		t.Fatal(err)
	}
	if lpPlan.Objective > ipPlan.Objective+1e-6 {
		t.Fatalf("C_LP %g > C_IP %g", lpPlan.Objective, ipPlan.Objective)
	}
}

func TestCPSResidualsSmall(t *testing.T) {
	r := testPop(800)
	m := example6MSSD(20, 25, 22, 18)
	res, err := Run(zcluster(2), m, r.Schema(), splitsOf(t, r, 2), Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	total := res.PlannedTuples + res.ResidualTuples
	if total == 0 {
		t.Fatal("no tuples assigned")
	}
	frac := float64(res.ResidualTuples) / float64(total)
	// The paper reports ≤ 5.5%; allow slack for the small scale here.
	if frac > 0.25 {
		t.Fatalf("residual fraction %.3f unexpectedly large", frac)
	}
}

// TestCPSRepresentative: over many runs, each individual's inclusion
// frequency in survey 1's male stratum must stay uniform even though CPS
// engineers sharing.
func TestCPSRepresentative(t *testing.T) {
	const runs = 700
	const men = 30
	r := dataset.NewRelation(testSchema())
	for i := int64(0); i < men; i++ {
		r.MustAdd(dataset.Tuple{ID: i, Attrs: []int64{1, (i * 37) % 1001, 20}})
	}
	for i := int64(men); i < 60; i++ {
		r.MustAdd(dataset.Tuple{ID: i, Attrs: []int64{0, (i * 37) % 1001, 20}})
	}
	m := example6MSSD(6, 6, 6, 6)
	splits := splitsOf(t, r, 2)
	counts := make([]int64, men)
	for run := 0; run < runs; run++ {
		res, err := Run(zcluster(2), m, r.Schema(), splits, Options{Seed: int64(run) * 31})
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range res.Answers[0].Strata[0] {
			counts[tp.ID]++
		}
	}
	p, err := stats.ChiSquareUniformP(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("CPS answer biased: p = %g, counts = %v", p, counts)
	}
}

func TestCPSValidateRejectsBadMSSD(t *testing.T) {
	r := testPop(50)
	bad := query.NewMSSD(query.PenaltyCosts{Interview: 1},
		query.NewSSD("bad",
			query.Stratum{Cond: predicate.MustParse("income < 100"), Freq: 1},
			query.Stratum{Cond: predicate.MustParse("income < 200"), Freq: 1},
		))
	if _, err := Run(zcluster(1), bad, r.Schema(), splitsOf(t, r, 1), Options{Seed: 1}); err == nil {
		t.Fatal("want validation error for overlapping strata")
	}
}
