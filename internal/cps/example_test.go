package cps_test

import (
	"fmt"

	"repro/internal/cps"
	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
	"repro/internal/query"
)

// Answer two surveys in parallel with MR-CPS: sharing individuals between
// them costs one interview instead of two, and the LP chooses who overlaps
// while both surveys stay representative stratified samples.
func ExampleRun() {
	schema := dataset.MustSchema(
		dataset.Field{Name: "gender", Min: 0, Max: 1},
		dataset.Field{Name: "income", Min: 0, Max: 1000},
	)
	r := dataset.NewRelation(schema)
	for i := int64(0); i < 400; i++ {
		r.MustAdd(dataset.Tuple{ID: i, Attrs: []int64{i % 2, (i * 37) % 1001}})
	}
	splits, _ := dataset.Partition(r, 4, dataset.Contiguous, nil)

	men := query.NewSSD("by-gender",
		query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: 10},
		query.Stratum{Cond: predicate.MustParse("gender = 0"), Freq: 10},
	)
	income := query.NewSSD("by-income",
		query.Stratum{Cond: predicate.MustParse("income < 500"), Freq: 10},
		query.Stratum{Cond: predicate.MustParse("income >= 500"), Freq: 10},
	)
	mssd := query.NewMSSD(query.PenaltyCosts{Interview: 4}, men, income)

	cluster := &mapreduce.Cluster{Slaves: 2, SlotsPerSlave: 1, Cost: mapreduce.ZeroCostModel()}
	res, err := cps.Run(cluster, mssd, schema, splits, cps.Options{Seed: 3})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("survey 1 size:", res.Answers[0].Size())
	fmt.Println("survey 2 size:", res.Answers[1].Size())
	fmt.Println("cheaper than independent selection:",
		res.Answers.Cost(mssd.Costs) < res.Initial.Cost(mssd.Costs))
	// Output:
	// survey 1 size: 20
	// survey 2 size: 20
	// cheaper than independent selection: true
}
