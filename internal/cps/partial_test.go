package cps

import (
	"math/rand"
	"testing"

	"repro/internal/predicate"
	"repro/internal/query"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// partialMSSD has a second query whose strata do NOT cover the whole domain
// (incomes in [500, 800] match nothing), so stratum selections with None
// entries flow through the entire pipeline.
func partialMSSD() *query.MSSD {
	q1 := query.NewSSD("Q1",
		query.Stratum{Cond: predicate.MustParse("gender = 1"), Freq: 8},
		query.Stratum{Cond: predicate.MustParse("gender = 0"), Freq: 8},
	)
	q2 := query.NewSSD("Q2",
		query.Stratum{Cond: predicate.MustParse("income < 500"), Freq: 6},
		query.Stratum{Cond: predicate.MustParse("income > 800"), Freq: 6},
	)
	return query.NewMSSD(query.PenaltyCosts{Interview: 2}, q1, q2)
}

func TestCPSPartialCoverage(t *testing.T) {
	r := testPop(500)
	m := partialMSSD()
	res, err := Run(zcluster(3), m, r.Schema(), splitsOf(t, r, 3), Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range m.Queries {
		if err := res.Answers[qi].Satisfies(q, r); err != nil {
			t.Fatalf("survey %d: %v", qi, err)
		}
	}
	// Some of A1's individuals must fall in Q2's uncovered gap — their
	// selections carry a None for Q2 and can only be assigned to survey 1.
	sawGap := false
	for _, stratum := range res.Answers[0].Strata {
		for _, tp := range stratum {
			if tp.Attrs[1] >= 500 && tp.Attrs[1] <= 800 {
				sawGap = true
			}
		}
	}
	if !sawGap {
		t.Fatal("no gap individuals in A1; partial coverage not exercised (suspicious for this population)")
	}
	if res.Answers.Cost(m.Costs) > res.Initial.Cost(m.Costs) {
		t.Fatal("CPS cost exceeded MQE on the partial-coverage MSSD")
	}
}

func TestSequentialPartialCoverageMatches(t *testing.T) {
	r := testPop(500)
	m := partialMSSD()
	res, err := Sequential(m, r, newRand(7), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range m.Queries {
		if err := res.Answers[qi].Satisfies(q, r); err != nil {
			t.Fatalf("survey %d: %v", qi, err)
		}
	}
}
