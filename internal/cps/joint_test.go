package cps

import (
	"testing"

	"repro/internal/stratified"
)

// TestJointIntegerMatchesDecomposedInteger: branch-and-bound over the joint
// Figure 3 program and over the per-σ blocks reach the same exact optimum.
func TestJointIntegerMatchesDecomposedInteger(t *testing.T) {
	r := testPop(400)
	m := example6MSSD(6, 7, 6, 7)
	compiled, err := CompileQueries(m.Queries, r.Schema())
	if err != nil {
		t.Fatal(err)
	}
	initial, _, err := stratified.RunMQE(zcluster(2), m.Queries, r.Schema(), splitsOf(t, r, 2), stratified.Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	statsQ := CollectFrequencies(m.Queries, initial, compiled)
	if _, err := CountLimitsInMemory(r, compiled, statsQ.Entries); err != nil {
		t.Fatal(err)
	}
	dec, err := SolvePlan(statsQ, m.Costs, SolveOptions{Integer: true})
	if err != nil {
		t.Fatal(err)
	}
	joint, err := SolvePlan(statsQ, m.Costs, SolveOptions{Integer: true, Joint: true})
	if err != nil {
		t.Fatal(err)
	}
	if diff := dec.Objective - joint.Objective; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("decomposed IP %g vs joint IP %g", dec.Objective, joint.Objective)
	}
	// Both integral plans must satisfy the equivalence constraints exactly.
	for key, e := range statsQ.Entries {
		for i := range m.Queries {
			if dec.Assigned(key, i) != e.Freq[i] || joint.Assigned(key, i) != e.Freq[i] {
				t.Fatalf("selection %s survey %d: dec %d joint %d want %d",
					e.Sel, i, dec.Assigned(key, i), joint.Assigned(key, i), e.Freq[i])
			}
		}
	}
}
