package cps

import (
	"reflect"
	"testing"
)

// TestCampaignWarmStartBitIdentical: a campaign's warm-started waves must be
// indistinguishable from cold solves — bit-identical LP objective, equal
// plans, equal answers — while actually reusing or seeding blocks from the
// previous wave.
func TestCampaignWarmStartBitIdentical(t *testing.T) {
	r := testPop(900)
	m := example6MSSD(8, 8, 8, 8)
	splits := splitsOf(t, r, 3)
	camp := NewCampaign(zcluster(3), r.Schema(), splits)

	// Cold control: replicate RunWave's exclusion bookkeeping by hand, with
	// warm starting never installed.
	coldSurveyed := make(map[int64]struct{})

	for wave := 0; wave < 3; wave++ {
		warmRes, err := camp.RunWave(m, Options{Seed: int64(wave) * 101})
		if err != nil {
			t.Fatal(err)
		}
		exclude := make(map[int64]struct{}, len(coldSurveyed))
		for id := range coldSurveyed {
			exclude[id] = struct{}{}
		}
		coldRes, err := Run(zcluster(3), m, r.Schema(), splits, Options{
			Seed: int64(wave) * 101, Exclude: exclude,
		})
		if err != nil {
			t.Fatal(err)
		}
		for id := range coldRes.Answers.Assignments() {
			coldSurveyed[id] = struct{}{}
		}

		if warmRes.LP.Objective != coldRes.LP.Objective {
			t.Errorf("wave %d: warm objective %x, cold %x", wave, warmRes.LP.Objective, coldRes.LP.Objective)
		}
		if warmRes.LP.Vars != coldRes.LP.Vars || warmRes.LP.Constraints != coldRes.LP.Constraints {
			t.Errorf("wave %d: warm program %d×%d, cold %d×%d", wave,
				warmRes.LP.Vars, warmRes.LP.Constraints, coldRes.LP.Vars, coldRes.LP.Constraints)
		}
		if !reflect.DeepEqual(warmRes.Plan.Assign, coldRes.Plan.Assign) {
			t.Errorf("wave %d: warm and cold plans differ", wave)
		}
		if !reflect.DeepEqual(warmRes.Answers, coldRes.Answers) {
			t.Errorf("wave %d: warm and cold answers differ", wave)
		}
	}

	reused, seeded, cold := camp.warm.Hits()
	if reused+seeded == 0 {
		t.Errorf("no blocks warm-started across 3 waves (reused %d, seeded %d, cold %d)", reused, seeded, cold)
	}
	t.Logf("warm-start hits: reused %d, seeded %d, cold %d", reused, seeded, cold)
}

// TestWarmStartExplicitStore: a caller-supplied store is used as-is and
// reports verbatim reuse when the same solve repeats.
func TestWarmStartExplicitStore(t *testing.T) {
	r := testPop(600)
	m := example6MSSD(5, 5, 5, 5)
	splits := splitsOf(t, r, 2)
	warm := NewWarmStart()
	opts := Options{Seed: 9, Solve: SolveOptions{WarmStart: warm}}

	first, err := Run(zcluster(2), m, r.Schema(), splits, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, _, coldFirst := warm.Hits()
	if coldFirst == 0 {
		t.Fatal("first solve should populate the store with cold blocks")
	}
	second, err := Run(zcluster(2), m, r.Schema(), splits, opts)
	if err != nil {
		t.Fatal(err)
	}
	reused, _, _ := warm.Hits()
	if reused == 0 {
		t.Error("identical rerun reused no blocks verbatim")
	}
	if first.LP.Objective != second.LP.Objective {
		t.Errorf("objective drifted across identical solves: %x vs %x", first.LP.Objective, second.LP.Objective)
	}
	if !reflect.DeepEqual(first.Plan.Assign, second.Plan.Assign) {
		t.Error("plan drifted across identical solves")
	}
}
