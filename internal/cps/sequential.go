package cps

import (
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/sampling"
	"repro/internal/stratified"
)

// Sequential runs the paper's Algorithm 2 (CPS) on a single machine, without
// MapReduce: the initial representative answer comes from the sequential
// reservoir sampler, frequencies and limits from in-memory scans, and the
// combined answer for Q′ from direct per-selection simple random samples.
// It is the reference implementation MR-CPS must agree with, and the
// cheapest way to answer an MSSD when the population fits in memory.
func Sequential(m *query.MSSD, r *dataset.Relation, rng *rand.Rand, solve SolveOptions) (*Result, error) {
	if err := m.Validate(r.Schema()); err != nil {
		return nil, err
	}
	queries := m.Queries
	n := len(queries)
	compiled, err := CompileQueries(queries, r.Schema())
	if err != nil {
		return nil, err
	}
	res := &Result{}

	// Step 1: representative non-optimal answer.
	initial, err := stratified.SequentialMulti(queries, r, rng)
	if err != nil {
		return nil, err
	}
	res.Initial = initial

	// Step 2+3: F(A_i, σ) and L(σ).
	stats := CollectFrequencies(queries, initial, compiled)
	res.LP.Selections = len(stats.Entries)
	if _, err := CountLimitsInMemory(r, compiled, stats.Entries); err != nil {
		return nil, err
	}

	// Step 4: the constraint program.
	plan, err := SolvePlan(stats, m.Costs, solve)
	if err != nil {
		return nil, err
	}
	res.LP.Vars = plan.Vars
	res.LP.Constraints = plan.Constraints
	res.LP.Objective = plan.Objective

	// Step 5: group the population by selection once, then draw the
	// combined answer per selection and deal to surveys.
	bySelection := make(map[string][]dataset.Tuple)
	tuples := r.Tuples()
	want := plan.WantPerSelection()
	for i := range tuples {
		sel := SelectionOf(&tuples[i], compiled)
		if sel.Empty() {
			continue
		}
		key := sel.Key()
		if _, needed := want[key]; needed {
			bySelection[key] = append(bySelection[key], tuples[i])
		}
	}
	answers := make(query.MultiAnswer, n)
	chosen := make([]map[int64]struct{}, n)
	for i, q := range queries {
		answers[i] = query.NewAnswer(len(q.Strata))
		chosen[i] = make(map[int64]struct{})
	}
	res.PlannedPerSurvey = make([]int, n)
	res.ResidualPerSurvey = make([]int, n)
	dealt := make(map[string][]int64, len(stats.Entries))
	for _, key := range stats.SortedKeys() {
		byTau := plan.Assign[key]
		if len(byTau) == 0 {
			continue
		}
		sel := stats.Entries[key].Sel
		pool := sampling.SRS(bySelection[key], want[key], rng)
		counts := make([]int64, n)
		dealt[key] = counts
		taus := make([]query.Tau, 0, len(byTau))
		for tau := range byTau {
			taus = append(taus, tau)
		}
		sort.Slice(taus, func(a, b int) bool { return taus[a] < taus[b] })
		for _, tau := range taus {
			take := byTau[tau]
			for take > 0 && len(pool) > 0 {
				t := pool[0]
				pool = pool[1:]
				take--
				res.PlannedTuples++
				for _, i := range tau.Indexes() {
					answers[i].Strata[sel[i]] = append(answers[i].Strata[sel[i]], t)
					chosen[i][t.ID] = struct{}{}
					counts[i]++
					res.PlannedPerSurvey[i]++
				}
			}
		}
	}

	// Step 6: residual top-up per (survey, selection) deficit.
	for _, key := range stats.SortedKeys() {
		e := stats.Entries[key]
		for i := 0; i < n; i++ {
			var got int64
			if counts, ok := dealt[key]; ok {
				got = counts[i]
			}
			d := int(e.Freq[i] - got)
			if d <= 0 {
				continue
			}
			var eligible []dataset.Tuple
			for _, t := range selectionMembers(r, compiled, key) {
				if _, taken := chosen[i][t.ID]; !taken {
					eligible = append(eligible, t)
				}
			}
			for _, t := range sampling.SRS(eligible, d, rng) {
				answers[i].Strata[e.Sel[i]] = append(answers[i].Strata[e.Sel[i]], t)
				chosen[i][t.ID] = struct{}{}
				res.ResidualTuples++
				res.ResidualPerSurvey[i]++
			}
		}
	}
	res.Answers = answers
	return res, nil
}

// selectionMembers returns the tuples of R whose maximal selection is key.
func selectionMembers(r *dataset.Relation, compiled [][]predicate.Pred, key string) []dataset.Tuple {
	var out []dataset.Tuple
	tuples := r.Tuples()
	for i := range tuples {
		if SelectionOf(&tuples[i], compiled).Key() == key {
			out = append(out, tuples[i])
		}
	}
	return out
}
