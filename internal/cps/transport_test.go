package cps

import (
	"testing"

	"repro/internal/mapreduce"
)

// TestCPSOverTCPShuffle runs the entire four-job MR-CPS pipeline with every
// shuffle travelling gob-encoded over loopback TCP, and checks the outcome
// matches the in-memory transport exactly (same seed → same individuals).
func TestCPSOverTCPShuffle(t *testing.T) {
	r := testPop(400)
	m := example6MSSD(8, 8, 8, 8)
	splits := splitsOf(t, r, 3)

	tcpCluster := zcluster(3)
	tcpCluster.NewTransport = func() (mapreduce.Transport, error) { return mapreduce.NewTCPTransport() }
	overTCP, err := Run(tcpCluster, m, r.Schema(), splits, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(zcluster(3), m, r.Schema(), splits, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range m.Queries {
		if err := overTCP.Answers[qi].Satisfies(q, r); err != nil {
			t.Fatalf("survey %d over TCP: %v", qi, err)
		}
		a, b := overTCP.Answers[qi], plain.Answers[qi]
		for k := range q.Strata {
			if len(a.Strata[k]) != len(b.Strata[k]) {
				t.Fatalf("survey %d stratum %d sizes differ across transports", qi, k)
			}
			for i := range a.Strata[k] {
				if a.Strata[k][i].ID != b.Strata[k][i].ID {
					t.Fatalf("survey %d stratum %d: tuple %d differs across transports", qi, k, i)
				}
			}
		}
	}
	if overTCP.Metrics.ShuffleBytes <= plain.Metrics.ShuffleBytes {
		t.Fatalf("wire bytes %d not above the in-memory estimate %d (gob + frame overhead expected)",
			overTCP.Metrics.ShuffleBytes, plain.Metrics.ShuffleBytes)
	}
}
