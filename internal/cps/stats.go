package cps

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/sst"
)

// SelEntry aggregates everything MR-CPS knows about one relevant stratum
// selection σ ∈ [[Q]]*: the per-survey frequencies F(A_i, σ) of the initial
// representative answer, and the population limit L(σ).
type SelEntry struct {
	Sel   Selection
	Freq  []int64 // Freq[i] = F(A_i, σ)
	Limit int64   // L(σ) = |{t ∈ R : σ(t) = σ}|
}

// TotalFreq returns Σ_i F(A_i, σ).
func (e *SelEntry) TotalFreq() int64 {
	var n int64
	for _, f := range e.Freq {
		n += f
	}
	return n
}

// Stats holds the relevant stratum selections [[Q]]* keyed by Selection.Key,
// plus the query count.
type Stats struct {
	N       int // number of SSD queries
	Entries map[string]*SelEntry
}

// SortedKeys returns the selection keys in deterministic order.
func (s *Stats) SortedKeys() []string {
	keys := make([]string, 0, len(s.Entries))
	for k := range s.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectFrequencies builds an SST per initial answer A_i and derives [[Q]]*
// with the frequencies F(A_i, σ), as in Section 5.2.5.1. Selections are
// keyed by the *maximal* selection σ(t) of each answer tuple.
func CollectFrequencies(queries []*query.SSD, answers query.MultiAnswer, compiled [][]predicate.Pred) *Stats {
	n := len(queries)
	stats := &Stats{N: n, Entries: make(map[string]*SelEntry)}
	tries := make([]*sst.Trie, n)
	for i := range tries {
		tries[i] = sst.New(n)
	}
	for qi, ans := range answers {
		if ans == nil {
			continue
		}
		for _, stratum := range ans.Strata {
			for ti := range stratum {
				sel := SelectionOf(&stratum[ti], compiled)
				tries[qi].Insert(sel, 1)
			}
		}
	}
	for qi, trie := range tries {
		trie.Walk(func(path []int, count int64) {
			sel := Selection(path)
			key := sel.Key()
			entry, ok := stats.Entries[key]
			if !ok {
				entry = &SelEntry{Sel: sel.Clone(), Freq: make([]int64, n)}
				stats.Entries[key] = entry
			}
			entry.Freq[qi] = count
		})
	}
	return stats
}

// CompileQueries compiles every stratum condition of every query once.
func CompileQueries(queries []*query.SSD, schema *dataset.Schema) ([][]predicate.Pred, error) {
	compiled := make([][]predicate.Pred, len(queries))
	for qi, q := range queries {
		ps, err := q.Compile(schema)
		if err != nil {
			return nil, err
		}
		compiled[qi] = ps
	}
	return compiled, nil
}
