package cps

import (
	"encoding/binary"
	"math"
	"sync"

	"repro/internal/lp"
	"repro/internal/query"
)

// WarmStart carries solved constraint-program blocks from one decomposed
// solve to the next — across the waves of a Campaign, where consecutive MSSDs
// share most of their relevant selections. A block whose inputs (variables,
// frequencies, limit, costs) are unchanged reuses the previous wave's
// solution verbatim, which is bit-identical by construction; a block whose
// numbers moved but whose variable set is the same seeds lp.SolveFrom with
// the previous basis and pays only phase-2 pivots. Everything else — new
// selections, changed variable sets, integer mode, the joint formulation —
// solves cold exactly as without warm start.
//
// A WarmStart is safe for the concurrent block solves of
// SolveOptions.Parallelism.
type WarmStart struct {
	mu     sync.Mutex
	blocks map[string]warmBlock
	hits   warmHits
}

// warmBlock is one selection's remembered solve.
type warmBlock struct {
	fp    string
	vars  int
	cons  int
	basis []int
	sol   *lp.Solution
}

// warmHits counts how blocks resolved, for tests and -explain output.
type warmHits struct {
	// Reused counts verbatim reuses (unchanged fingerprint), Seeded
	// basis-seeded solves, Cold everything else.
	Reused, Seeded, Cold int
}

// NewWarmStart returns an empty store. A nil *WarmStart is valid and disables
// warm starting.
func NewWarmStart() *WarmStart {
	return &WarmStart{blocks: make(map[string]warmBlock)}
}

// Hits reports how blocks resolved since the store was created.
func (w *WarmStart) Hits() (reused, seeded, cold int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hits.Reused, w.hits.Seeded, w.hits.Cold
}

func (w *WarmStart) lookup(key string) (warmBlock, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	b, ok := w.blocks[key]
	return b, ok
}

func (w *WarmStart) store(key string, b warmBlock) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.blocks[key] = b
}

func (w *WarmStart) count(kind *int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	*kind++
}

// blockFingerprint captures everything solveBlock's program depends on: the
// variable set (taus), the per-survey frequencies, the limit, and the exact
// bits of every cost coefficient. Equal fingerprints formulate equal programs.
func blockFingerprint(e *SelEntry, taus []query.Tau, costs query.Coster) string {
	buf := make([]byte, 0, 8*(2*len(taus)+len(e.Freq)+2))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(taus)))
	for _, tau := range taus {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(tau))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(costs.Cost(tau)))
	}
	for _, f := range e.Freq {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Limit))
	return string(buf)
}
