package cps

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/predicate"
	"repro/internal/query"
)

// fractionalMSSD builds a 3-survey MSSD whose Figure 3 blocks have
// fractional LP optima: pairwise sharing costs $1, full sharing and solo
// interviews are expensive. With F = (f, f, f) the LP optimum sets each
// pairwise variable to f/2 (cost 1.5f), while the integral optimum needs
// ⌈1.5f⌉; flooring the halves forces the residual phase to top up.
func fractionalMSSD(f int) *query.MSSD {
	mk := func(name, attr string) *query.SSD {
		return query.NewSSD(name,
			query.Stratum{Cond: predicate.MustParse(attr + " = 1"), Freq: f},
		)
	}
	costs := query.TableCosts{
		Interview: []float64{3, 3, 3}, // solo: expensive
		Shared: map[query.Tau]float64{
			query.NewTau(0, 1):    1,
			query.NewTau(0, 2):    1,
			query.NewTau(1, 2):    1,
			query.NewTau(0, 1, 2): 100, // full sharing: prohibitive
		},
	}
	return query.NewMSSD(costs, mk("A", "gender"), mk("B", "flagB"), mk("C", "flagC"))
}

// fractionalPop: every individual satisfies all three surveys' single strata,
// so there is exactly one stratum selection with I(σ) = {1,2,3}.
func fractionalPop(n int) *dataset.Relation {
	schema := dataset.MustSchema(
		dataset.Field{Name: "gender", Min: 0, Max: 1},
		dataset.Field{Name: "flagB", Min: 0, Max: 1},
		dataset.Field{Name: "flagC", Min: 0, Max: 1},
	)
	r := dataset.NewRelation(schema)
	for i := int64(0); i < int64(n); i++ {
		r.MustAdd(dataset.Tuple{ID: i, Attrs: []int64{1, 1, 1}})
	}
	return r
}

func TestFractionalLPTriggersResidual(t *testing.T) {
	const f = 5 // odd, so f/2 halves floor away one unit per pair
	r := fractionalPop(200)
	m := fractionalMSSD(f)
	res, err := Run(zcluster(2), m, r.Schema(), splitsOf(t, r, 2), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The LP optimum is fractional: X{1,2} = X{1,3} = X{2,3} = 2.5.
	if math.Abs(res.LP.Objective-7.5) > 1e-6 {
		t.Fatalf("LP objective %g, want 7.5 (fractional vertex)", res.LP.Objective)
	}
	if res.ResidualTuples == 0 {
		t.Fatal("flooring 2.5s must leave deficits for the residual phase")
	}
	// Despite rounding, every survey still gets exactly f individuals.
	for qi, q := range m.Queries {
		if err := res.Answers[qi].Satisfies(q, r); err != nil {
			t.Fatalf("survey %d after residual: %v", qi, err)
		}
	}
	// No tuple may appear twice within one survey.
	for qi := range m.Queries {
		seen := map[int64]bool{}
		for _, stratum := range res.Answers[qi].Strata {
			for _, tp := range stratum {
				if seen[tp.ID] {
					t.Fatalf("survey %d holds tuple %d twice", qi, tp.ID)
				}
				seen[tp.ID] = true
			}
		}
	}
}

func TestFractionalIPAvoidsResidual(t *testing.T) {
	const f = 5
	r := fractionalPop(200)
	m := fractionalMSSD(f)
	res, err := Run(zcluster(2), m, r.Schema(), splitsOf(t, r, 2), Options{
		Seed:  3,
		Solve: SolveOptions{Integer: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResidualTuples != 0 {
		t.Fatalf("integer mode left %d residual tuples", res.ResidualTuples)
	}
	// With pair-sum P = X{1,2}+X{1,3}+X{2,3} and singles S, the equalities
	// give 2P+S = 15 and the cost is P+3S = 45−5P; the best integral P is
	// 7 (e.g. 3,2,2 plus one solo interview), so C_IP = 10 — against the
	// fractional C_LP = 45−5·7.5 = 7.5.
	if math.Abs(res.LP.Objective-10) > 1e-6 {
		t.Fatalf("IP objective %g, want 10", res.LP.Objective)
	}
	for qi, q := range m.Queries {
		if err := res.Answers[qi].Satisfies(q, r); err != nil {
			t.Fatalf("survey %d: %v", qi, err)
		}
	}
}

// TestResidualCostOrdering: on the fractional instance, C_LP ≤ C_IP ≤ C_A,
// and the realised LP-mode cost exceeds the IP cost by the rounding loss.
func TestResidualCostOrdering(t *testing.T) {
	const f = 5
	r := fractionalPop(200)
	m := fractionalMSSD(f)
	lpRes, err := Run(zcluster(2), m, r.Schema(), splitsOf(t, r, 2), Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ipRes, err := Run(zcluster(2), m, r.Schema(), splitsOf(t, r, 2), Options{
		Seed:  9,
		Solve: SolveOptions{Integer: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	cLP := lpRes.LP.Objective
	cIP := ipRes.LP.Objective
	cA := lpRes.Answers.Cost(m.Costs)
	if !(cLP <= cIP+1e-9 && cIP <= cA+1e-9) {
		t.Fatalf("ordering violated: C_LP=%g C_IP=%g C_A=%g", cLP, cIP, cA)
	}
}
