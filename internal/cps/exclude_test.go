package cps

import "testing"

// TestCrossCampaignExclusion: individuals surveyed in a first campaign can
// be banned from the next one — no excluded ID may appear anywhere in the
// second campaign's answers, and the second campaign must still fill its
// frequencies from the remaining population.
func TestCrossCampaignExclusion(t *testing.T) {
	r := testPop(600)
	m := example6MSSD(10, 12, 11, 9)
	splits := splitsOf(t, r, 3)

	first, err := Run(zcluster(3), m, r.Schema(), splits, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	banned := make(map[int64]struct{})
	for id := range first.Answers.Assignments() {
		banned[id] = struct{}{}
	}
	if len(banned) == 0 {
		t.Fatal("first campaign selected nobody")
	}

	second, err := Run(zcluster(3), m, r.Schema(), splits, Options{Seed: 2, Exclude: banned})
	if err != nil {
		t.Fatal(err)
	}
	for id := range second.Answers.Assignments() {
		if _, bad := banned[id]; bad {
			t.Fatalf("excluded individual %d re-surveyed", id)
		}
	}
	// The population is large enough that the second campaign still fills
	// every stratum completely.
	for qi, q := range m.Queries {
		if got, want := second.Answers[qi].Size(), q.TotalFreq(); got != want {
			t.Fatalf("campaign 2 survey %d: %d of %d slots filled", qi, got, want)
		}
	}
	// The initial representative answer of campaign 2 is also clean.
	for id := range second.Initial.Assignments() {
		if _, bad := banned[id]; bad {
			t.Fatalf("excluded individual %d in campaign 2's initial answer", id)
		}
	}
}

// TestExclusionShrinksLimits: L(σ) must not count excluded individuals, or
// the plan could promise more sharing than the samplable population allows.
func TestExclusionShrinksLimits(t *testing.T) {
	r := testPop(300)
	m := example6MSSD(5, 5, 5, 5)
	compiled, err := CompileQueries(m.Queries, r.Schema())
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(zcluster(2), m, r.Schema(), splitsOf(t, r, 2), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Exclude half the population.
	banned := make(map[int64]struct{})
	for i := int64(0); i < 150; i++ {
		banned[i] = struct{}{}
	}
	stats := CollectFrequencies(m.Queries, first.Initial, compiled)
	full := CollectFrequencies(m.Queries, first.Initial, compiled)
	if _, err := CountLimits(zcluster(2), compiled, full.Entries, splitsOf(t, r, 2), 3, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := CountLimits(zcluster(2), compiled, stats.Entries, splitsOf(t, r, 2), 3, banned); err != nil {
		t.Fatal(err)
	}
	var fullTotal, exclTotal int64
	for key, e := range full.Entries {
		fullTotal += e.Limit
		exclTotal += stats.Entries[key].Limit
	}
	if exclTotal >= fullTotal {
		t.Fatalf("excluded limits %d not below full limits %d", exclTotal, fullTotal)
	}
}
