package cps

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/query"
)

// Campaign runs a sequence of MSSD queries ("waves") over the same
// population, automatically excluding every previously surveyed individual
// from later waves — the cross-campaign survey-fatigue policy. Each wave is
// answered by MR-CPS with the accumulated exclusion set.
type Campaign struct {
	cluster *mapreduce.Cluster
	schema  *dataset.Schema
	splits  []dataset.Split
	// Surveyed accumulates the IDs of everyone selected so far.
	Surveyed map[int64]struct{}
	// Waves holds each wave's result, in order.
	Waves []*Result
	// warm carries solved constraint-program blocks between waves, installed
	// into each wave's SolveOptions unless the caller supplied their own.
	warm *WarmStart
}

// NewCampaign prepares a campaign over the distributed population.
func NewCampaign(cluster *mapreduce.Cluster, schema *dataset.Schema, splits []dataset.Split) *Campaign {
	return &Campaign{
		cluster:  cluster,
		schema:   schema,
		splits:   splits,
		Surveyed: make(map[int64]struct{}),
	}
}

// RunWave answers one MSSD with everyone from earlier waves excluded, and
// records its participants. opts.Exclude is merged with the campaign's
// accumulated set.
func (c *Campaign) RunWave(m *query.MSSD, opts Options) (*Result, error) {
	merged := make(map[int64]struct{}, len(c.Surveyed)+len(opts.Exclude))
	for id := range c.Surveyed {
		merged[id] = struct{}{}
	}
	for id := range opts.Exclude {
		merged[id] = struct{}{}
	}
	opts.Exclude = merged
	if opts.Solve.WarmStart == nil && !opts.Solve.Integer && !opts.Solve.Joint {
		if c.warm == nil {
			c.warm = NewWarmStart()
		}
		opts.Solve.WarmStart = c.warm
	}
	res, err := Run(c.cluster, m, c.schema, c.splits, opts)
	if err != nil {
		return nil, fmt.Errorf("cps: wave %d: %w", len(c.Waves)+1, err)
	}
	for id := range res.Answers.Assignments() {
		c.Surveyed[id] = struct{}{}
	}
	c.Waves = append(c.Waves, res)
	return res, nil
}

// TotalSurveyed returns how many distinct individuals all waves touched.
func (c *Campaign) TotalSurveyed() int { return len(c.Surveyed) }
