package cps

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/predicate"
	"repro/internal/query"
	"repro/internal/stratified"
)

// wideMSSD stratifies three overlapping dimensions (gender × income bands ×
// age bands), so the initial sample yields dozens of relevant selections —
// enough independent per-σ blocks for the parallel decomposed solver to have
// real work to distribute.
func wideMSSD() *query.MSSD {
	gender := []query.Stratum{
		{Cond: predicate.MustParse("gender = 1"), Freq: 12},
		{Cond: predicate.MustParse("gender = 0"), Freq: 14},
	}
	var income []query.Stratum
	for lo := 0; lo < 1000; lo += 250 {
		income = append(income, query.Stratum{
			Cond: predicate.MustParse(fmt.Sprintf("income >= %d and income < %d", lo, lo+250)),
			Freq: 6,
		})
	}
	income = append(income, query.Stratum{Cond: predicate.MustParse("income >= 1000"), Freq: 3})
	var age []query.Stratum
	for lo := 18; lo < 78; lo += 12 {
		age = append(age, query.Stratum{
			Cond: predicate.MustParse(fmt.Sprintf("age >= %d and age < %d", lo, lo+12)),
			Freq: 5,
		})
	}
	age = append(age, query.Stratum{Cond: predicate.MustParse("age >= 78"), Freq: 5})
	return query.NewMSSD(query.PenaltyCosts{Interview: 1},
		query.NewSSD("Q1", gender...),
		query.NewSSD("Q2", income...),
		query.NewSSD("Q3", age...))
}

// wideStats runs the MQE step and the limit count for wideMSSD, producing the
// statistics the constraint program is formulated from.
func wideStats(t testing.TB, n int) (*Stats, *query.MSSD) {
	t.Helper()
	r := testPop(n)
	m := wideMSSD()
	compiled, err := CompileQueries(m.Queries, r.Schema())
	if err != nil {
		t.Fatal(err)
	}
	splits, err := dataset.Partition(r, 2, dataset.Contiguous, nil)
	if err != nil {
		t.Fatal(err)
	}
	initial, _, err := stratified.RunMQE(zcluster(2), m.Queries, r.Schema(), splits, stratified.Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	statsQ := CollectFrequencies(m.Queries, initial, compiled)
	if _, err := CountLimitsInMemory(r, compiled, statsQ.Entries); err != nil {
		t.Fatal(err)
	}
	return statsQ, m
}

// The parallel decomposed solve must be indistinguishable from the serial
// one: same assignments, same program sizes, and a byte-identical Objective —
// the fold walks blocks in sorted key order precisely so float summation
// order never depends on goroutine scheduling.
func TestDecomposedParallelDeterministic(t *testing.T) {
	statsQ, m := wideStats(t, 2000)
	serial, err := SolvePlan(statsQ, m.Costs, SolveOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Assign) < 10 {
		t.Fatalf("want a wide program, got only %d selections", len(serial.Assign))
	}
	for _, par := range []int{2, 8, 32} {
		plan, err := SolvePlan(statsQ, m.Costs, SolveOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if plan.Objective != serial.Objective {
			t.Fatalf("parallelism %d: objective %v, serial %v (must be bit-identical)",
				par, plan.Objective, serial.Objective)
		}
		if plan.Vars != serial.Vars || plan.Constraints != serial.Constraints {
			t.Fatalf("parallelism %d: size %d/%d, serial %d/%d",
				par, plan.Vars, plan.Constraints, serial.Vars, serial.Constraints)
		}
		if !reflect.DeepEqual(plan.Assign, serial.Assign) {
			t.Fatalf("parallelism %d: assignments differ from serial solve", par)
		}
	}
}

// The default (Parallelism 0 → GOMAXPROCS) must agree with serial too.
func TestDecomposedDefaultParallelismDeterministic(t *testing.T) {
	statsQ, m := wideStats(t, 1200)
	serial, err := SolvePlan(statsQ, m.Costs, SolveOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	def, err := SolvePlan(statsQ, m.Costs, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, def) {
		t.Fatal("default parallel plan differs from serial plan")
	}
}

// BenchmarkLPParallel compares the decomposed constraint-program solve
// serial vs parallel over a wide selection set (the per-σ blocks are
// independent LPs; see SolveOptions.Parallelism).
func BenchmarkLPParallel(b *testing.B) {
	statsQ, m := wideStats(b, 4000)
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SolvePlan(statsQ, m.Costs, SolveOptions{Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("integer/parallelism=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolvePlan(statsQ, m.Costs, SolveOptions{Integer: true, Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("integer/parallelism=8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolvePlan(statsQ, m.Costs, SolveOptions{Integer: true, Parallelism: 8}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
