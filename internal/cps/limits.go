package cps

import (
	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/predicate"
)

// CountLimitsInMemory fills the Limit of every wanted selection by a direct
// sequential scan of the relation — the single-machine oracle for the
// MapReduce job below, used by tests and the pure-CPS path.
func CountLimitsInMemory(r *dataset.Relation, compiled [][]predicate.Pred, wanted map[string]*SelEntry) (int64, error) {
	var matched int64
	tuples := r.Tuples()
	for i := range tuples {
		sel := SelectionOf(&tuples[i], compiled)
		if sel.Empty() {
			continue
		}
		if e, ok := wanted[sel.Key()]; ok {
			e.Limit++
			matched++
		}
	}
	return matched, nil
}

// limitOut is one output of the limit-counting job.
type limitOut struct {
	Key   string
	Count int64
}

// CountLimits runs the MapReduce program of Figure 4 to obtain L(σ) for the
// relevant selections: map emits (σ(t), 1) for every tuple, a combiner
// pre-sums per map task, and the reducer sums the partial counts. Selections
// outside wanted are dropped at the map stage to keep the shuffle small;
// excluded individuals do not count toward the limits (they cannot be
// sampled, so the plan must not rely on them).
func CountLimits(c *mapreduce.Cluster, compiled [][]predicate.Pred, wanted map[string]*SelEntry, splits []dataset.Split, seed int64, exclude map[int64]struct{}) (mapreduce.Metrics, error) {
	job := &mapreduce.Job[dataset.Tuple, string, int64, limitOut]{
		Name: "mr-cps-limits",
		Seed: seed,
		Mapper: mapreduce.MapperFunc[dataset.Tuple, string, int64](
			func(_ *mapreduce.TaskContext, t dataset.Tuple, emit func(string, int64)) {
				if _, skip := exclude[t.ID]; skip {
					return
				}
				sel := SelectionOf(&t, compiled)
				if sel.Empty() {
					return
				}
				key := sel.Key()
				if _, ok := wanted[key]; ok {
					emit(key, 1)
				}
			}),
		Combiner: mapreduce.CombinerFunc[string, int64](
			func(_ *mapreduce.TaskContext, _ string, vs []int64, emit func(int64)) {
				var sum int64
				for _, v := range vs {
					sum += v
				}
				emit(sum)
			}),
		Reducer: mapreduce.ReducerFunc[string, int64, limitOut](
			func(_ *mapreduce.TaskContext, k string, vs []int64, emit func(limitOut)) {
				var sum int64
				for _, v := range vs {
					sum += v
				}
				emit(limitOut{Key: k, Count: sum})
			}),
		KeyString: func(k string) string { return k },
	}
	splitsIn := make([][]dataset.Tuple, len(splits))
	for i, s := range splits {
		splitsIn[i] = s
	}
	res, err := mapreduce.Run(c, job, splitsIn)
	if err != nil {
		return mapreduce.Metrics{}, err
	}
	for _, o := range res.Output {
		wanted[o.Key].Limit = o.Count
	}
	return res.Metrics, nil
}
