// Package repro reproduces "Stratified-Sampling over Social Networks Using
// MapReduce" (Levin & Kanza, SIGMOD 2014): distributed, unbiased stratified
// sampling (MR-SQE/MR-MQE) and cost-optimal multi-survey sampling (MR-CPS)
// over an in-process MapReduce substrate.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-vs-measured record, and bench_test.go for the per-table/figure
// regeneration harness.
package repro
