#!/usr/bin/env bash
# Benchmark-regression smoke: run the allocation-tracked engine and shuffle
# benchmarks once and fail if any benchmark's allocs/op regressed more than
# 10% against scripts/bench_baseline.txt.
#
# allocs/op is the one benchmark statistic that is deterministic enough to
# gate CI on: ns/op on shared runners is noise, but the engine's allocation
# counts are exact for a fixed workload. Refresh the baseline intentionally
# (and explain why in the commit) with:
#
#   scripts/bench_regress.sh --update
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=scripts/bench_baseline.txt
out=$(mktemp)
trap 'rm -f "$out"' EXIT

run() { # pkg bench-regex
  go test "$1" -run '^$' -bench "$2" -benchtime=1x -count=1 \
    | awk '$NF == "allocs/op" { sub(/-[0-9]+$/, "", $1); print $1, $(NF-1) }'
}

{
  run ./internal/mapreduce/ 'BenchmarkEngine$|BenchmarkShuffleTransport$|BenchmarkShuffleVolume'
  run ./internal/worker/ 'BenchmarkEngine/backend=inproc$|BenchmarkEngine/backend=tcp'
  run ./internal/serve/ 'BenchmarkServePass$'
} >"$out"

if [[ "${1:-}" == "--update" ]]; then
  cp "$out" "$baseline"
  echo "baseline updated:"
  cat "$baseline"
  exit 0
fi

if [[ ! -f "$baseline" ]]; then
  echo "missing $baseline — run scripts/bench_regress.sh --update" >&2
  exit 1
fi

fail=0
while read -r name allocs; do
  base=$(awk -v n="$name" '$1 == n { print $2 }' "$baseline")
  if [[ -z "$base" ]]; then
    echo "NEW       $name ${allocs} allocs/op (not in baseline; run --update)"
    continue
  fi
  # Fail when allocs/op exceeds baseline by >10%.
  if (( allocs * 10 > base * 11 )); then
    echo "REGRESSED $name ${allocs} allocs/op vs baseline ${base} (>10%)"
    fail=1
  else
    echo "ok        $name ${allocs} allocs/op (baseline ${base})"
  fi
done <"$out"

# A benchmark disappearing silently would hollow out the gate.
while read -r name _; do
  if ! grep -q "^${name} " "$out"; then
    echo "MISSING   $name (in baseline, not produced; run --update if removed on purpose)"
    fail=1
  fi
done <"$baseline"

exit "$fail"
