#!/usr/bin/env bash
# Tracer-overhead gate: run the engine benchmark with the tracer disabled and
# with a JSONLTracer attached, and fail if the traced run costs more than
# 3x the untraced one — or if the untraced path shows signs of paying for
# tracing at all (it must stay within the same allocs/op, which is exact).
#
# ns/op on shared CI runners is noisy, so the wall-clock ratio threshold is
# deliberately generous: it exists to catch a span being assembled per record
# instead of per task, not a few percent of drift. The zero-cost budget for
# the tracer-off path (ISSUE: "all zero-cost when tracing off") is enforced
# by the exact allocs/op comparison plus scripts/bench_regress.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

out=$(go test ./internal/mapreduce/ -run '^$' \
  -bench 'BenchmarkEngine$|BenchmarkEngineTraced$' -benchtime=3x -count=1)
echo "$out"

read -r off_ns off_allocs < <(awk '/^BenchmarkEngine-|^BenchmarkEngine /      { ns=$3 } /^BenchmarkEngine-.*allocs\/op|^BenchmarkEngine .*allocs\/op/ { for (i=1;i<=NF;i++) if ($(i+1)=="allocs/op") a=$i } END { print ns, a }' <<<"$out")
read -r on_ns on_allocs < <(awk '/^BenchmarkEngineTraced/ { ns=$3; for (i=1;i<=NF;i++) if ($(i+1)=="allocs/op") a=$i } END { print ns, a }' <<<"$out")

if [[ -z "${off_ns:-}" || -z "${on_ns:-}" ]]; then
  echo "trace_overhead: could not parse benchmark output" >&2
  exit 1
fi

echo "tracer off: ${off_ns} ns/op ${off_allocs:-?} allocs/op"
echo "tracer on:  ${on_ns} ns/op ${on_allocs:-?} allocs/op"

# Traced must stay within 3x untraced (integer math; ns/op may have a
# fractional part on sub-microsecond benchmarks, so strip it).
off=${off_ns%.*}; on=${on_ns%.*}
if (( on > off * 3 )); then
  echo "FAIL: traced engine ${on} ns/op exceeds 3x untraced ${off} ns/op" >&2
  exit 1
fi
echo "ok: traced/untraced ratio within budget"
