#!/usr/bin/env bash
# live_churn.sh — end-to-end smoke of the live mutation path (DESIGN.md §14).
#
# Starts `strata serve -live`, registers a standing query, drives mixed
# query/mutation churn with `strata loadgen -mutate`, and asserts:
#   1. the subscription received pushes (long-poll observes a version > 0);
#   2. a warm /v1/sample answer rides the reservoirs ("live": true, no pass);
#   3. staleness never exceeded the configured bound;
#   4. the churn is visible (mutation seq advanced, population changed or
#      repairs ran when the bound was hit).
set -euo pipefail
cd "$(dirname "$0")/.."

POP=20000
SEED=1
BOUND=16
QUERY='nop >= 100 : 5 ; nop < 100 : 10'

tmp="$(mktemp -d)"
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$tmp"' EXIT

echo "== build"
go build -o "$tmp/strata" ./cmd/strata

echo "== start live daemon (staleness bound $BOUND)"
"$tmp/strata" serve -addr localhost:0 -n "$POP" -seed "$SEED" \
  -live -staleness "$BOUND" -window 2ms >"$tmp/serve.out" 2>"$tmp/serve.err" &
SERVE_PID=$!

base=""
for _ in $(seq 1 100); do
  base="$(sed -n 's|.*on http://\([^ ]*\) .*|\1|p' "$tmp/serve.out" | head -1)"
  [ -n "$base" ] && curl -sf "http://$base/healthz" >/dev/null 2>&1 && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$tmp/serve.err"; echo "FAIL: daemon died"; exit 1; }
  sleep 0.1
done
[ -n "$base" ] || { echo "FAIL: daemon never came up"; cat "$tmp/serve.err"; exit 1; }
echo "daemon at $base"

echo "== subscribe a standing query (push every 5 mutations)"
curl -sf "http://$base/v1/subscribe" \
  -d "{\"query\": \"$QUERY\", \"seed\": $SEED, \"every_mutations\": 5}" \
  | tee "$tmp/sub.json"
echo
SUB="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["subscription"])' "$tmp/sub.json")"

echo "== drive mixed churn (20% mutation batches)"
"$tmp/strata" loadgen -addr "$base" -clients 8 -requests 200 -mutate 0.2 \
  -mutate-batch 8 -n "$POP" -seed "$SEED" >"$tmp/loadgen.out"
grep 'mutations:' "$tmp/loadgen.out"

echo "== subscription observed pushes"
curl -sf "http://$base/v1/next?id=$SUB&after=0&timeout_ms=5000" >"$tmp/push.json"
python3 - "$tmp/push.json" <<'PY'
import json, sys
p = json.load(open(sys.argv[1]))
assert p["version"] > 0, f"push carries no mutations: {p}"
assert p["strata"], "push has no strata"
print(f"ok: push seq {p['seq']}, query version {p['version']}, mutation seq {p['mutation_seq']}")
PY

echo "== warm standing-query read, staleness under bound"
curl -sf "http://$base/v1/sample" \
  -d "{\"query\": \"$QUERY\", \"seed\": $SEED}" >"$tmp/warm.json"
curl -sf "http://$base/v1/stats" >"$tmp/stats.json"
python3 - "$tmp/warm.json" "$tmp/stats.json" "$BOUND" <<'PY'
import json, sys
warm = json.load(open(sys.argv[1]))
stats = json.load(open(sys.argv[2]))
bound = int(sys.argv[3])
assert warm.get("live"), f"standing query not answered warm: {warm.keys()}"
live = stats["live"]
assert live["max_staleness"] <= bound, \
    f"staleness {live['max_staleness']} exceeded bound {bound}"
assert live["mutation_seq"] > 0, "no mutations applied"
assert stats["live_hits"] > 0, "warm reads not counted"
muts = live["inserts"] + live["deletes"] + live["updates"]
print(f"ok: live=true, {stats['live_hits']} warm hits, {muts} mutations, "
      f"{live['repairs']} repairs, max staleness {live['max_staleness']} <= {bound}")
PY

echo "== graceful drain"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "FAIL: daemon exited non-zero on SIGTERM"; exit 1; }

echo "PASS: live churn smoke"
