#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the resident sampling daemon.
#
# Starts `strata serve`, fires K concurrent identical SSD queries, and
# asserts the service contract of DESIGN.md §12:
#   1. the queries coalesce (coalesced counter > 0, exactly one engine pass);
#   2. every client's answer is identical;
#   3. the daemon's answer is byte-identical to a one-shot `strata sample`
#      run with the same population, seed, slaves and layout;
#   4. SIGTERM drains gracefully.
set -euo pipefail
cd "$(dirname "$0")/.."

POP=20000
SEED=1
SLAVES=4
QUERY='nop >= 100 : 5 ; nop < 100 : 10'
K=6

tmp="$(mktemp -d)"
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$tmp"' EXIT

echo "== build"
go build -o "$tmp/strata" ./cmd/strata

echo "== start daemon"
"$tmp/strata" serve -addr localhost:0 -n "$POP" -seed "$SEED" -slaves "$SLAVES" \
  -window 300ms >"$tmp/serve.out" 2>"$tmp/serve.err" &
SERVE_PID=$!

base=""
for _ in $(seq 1 100); do
  base="$(sed -n 's|.*on http://\([^ ]*\) .*|\1|p' "$tmp/serve.out" | head -1)"
  [ -n "$base" ] && curl -sf "http://$base/healthz" >/dev/null 2>&1 && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$tmp/serve.err"; echo "FAIL: daemon died"; exit 1; }
  sleep 0.1
done
[ -n "$base" ] || { echo "FAIL: daemon never came up"; cat "$tmp/serve.err"; exit 1; }
echo "daemon at $base"

echo "== fire $K concurrent identical queries"
pids=()
for i in $(seq 1 "$K"); do
  curl -sf "http://$base/v1/sample" \
    -d "{\"query\": \"$QUERY\", \"seed\": $SEED}" >"$tmp/resp.$i.json" &
  pids+=("$!")
done
for p in "${pids[@]}"; do wait "$p"; done
kill -0 "$SERVE_PID" 2>/dev/null || { echo "FAIL: daemon died under load"; exit 1; }

echo "== check coalescing via /v1/stats"
curl -sf "http://$base/v1/stats" | tee "$tmp/stats.json"
python3 - "$tmp/stats.json" <<'PY'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["passes"] == 1, f"want exactly 1 engine pass, got {s['passes']}"
assert s["coalesced"] > 0, f"coalescing counter is zero: {s}"
print(f"ok: 1 pass, {s['coalesced']} coalesced, {s['single_flight']} single-flight, "
      f"{s['cache_hits']} cache hits for {s['queries']} queries")
PY

echo "== check all $K clients got identical answers"
python3 - "$tmp" "$K" <<'PY'
import json, sys
tmp, k = sys.argv[1], int(sys.argv[2])
answers = []
for i in range(1, k + 1):
    r = json.load(open(f"{tmp}/resp.{i}.json"))
    answers.append([st["individuals"] for st in r["strata"]])
assert all(a == answers[0] for a in answers), "clients disagree on the answer"
print("ok: all clients identical")
PY

echo "== check byte-identity with one-shot strata sample"
"$tmp/strata" sample -n "$POP" -seed "$SEED" -slaves "$SLAVES" -query "$QUERY" \
  >"$tmp/sample.out"
python3 - "$tmp" <<'PY'
import json, re, sys
tmp = sys.argv[1]
# `strata sample` prints each sampled individual as a two-space-indented line.
cli = [l.strip() for l in open(f"{tmp}/sample.out") if l.startswith("  ")]
r = json.load(open(f"{tmp}/resp.1.json"))
daemon = [ind for st in r["strata"] for ind in st["individuals"]]
assert cli == daemon, (
    f"daemon answer differs from strata sample:\ncli    {cli}\ndaemon {daemon}")
print(f"ok: byte-identical with strata sample ({len(daemon)} individuals)")
PY

echo "== loadgen compare (batched vs window=0, QPS floor)"
# A short self-hosted load run gates the warm-pass fast path: batched QPS
# must clear a floor (env-overridable for slow runners) and the report must
# carry the pass-attribution block. The floor is deliberately far below the
# ~500 QPS a warm daemon does on one dev core — it catches order-of-magnitude
# regressions, not noise.
"$tmp/strata" loadgen -selfhost -compare -n "$POP" -seed "$SEED" -slaves "$SLAVES" \
  -clients 8 -requests 200 -json "$tmp/loadgen.json" >"$tmp/loadgen.out"
QPS_FLOOR="${SERVE_SMOKE_QPS_FLOOR:-20}" python3 - "$tmp/loadgen.json" <<'PY'
import json, os, sys
r = json.load(open(sys.argv[1]))
floor = float(os.environ["QPS_FLOOR"])
qps = r["batched"]["qps"]
assert qps >= floor, f"batched QPS {qps:.0f} below floor {floor:.0f}"
assert r["batched"]["daemon_stats"].get("latency_attribution"), "no pass attribution in report"
assert len(r["batched"].get("qps_timeline", [])) == 10, "missing QPS timeline"
print(f"ok: {qps:.0f} QPS batched vs {r['unbatched']['qps']:.0f} unbatched "
      f"(floor {floor:.0f}), attribution + timeline present")
PY

echo "== graceful drain on SIGTERM"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "FAIL: daemon exited non-zero on SIGTERM"; exit 1; }
grep -q '^drained:' "$tmp/serve.out" || { echo "FAIL: no drain summary"; cat "$tmp/serve.out"; exit 1; }
grep '^drained:' "$tmp/serve.out"

echo "PASS: serve smoke"
